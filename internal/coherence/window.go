package coherence

import (
	"secdir/internal/addr"
	"secdir/internal/cachesim"
	"secdir/internal/config"
	"secdir/internal/directory"
)

// windowScheduler overlaps the slice transactions of an AccessBatch run.
//
// The batch is partitioned, in program order, into conflict windows: maximal
// runs of accesses whose home slices are pairwise distinct, whose private
// L1/L2 sets are pairwise distinct, and whose potential fill victims notify
// only slices that no later access in the window targets. Inside such a
// window the per-slice request order the serial engine would produce is
// independent of how the slice transactions interleave in wall-clock time,
// so the scheduler dispatches them to their home shards all at once and
// commits the results — private-cache fills, coherence actions, counters,
// latencies, events — strictly in program order at the window barrier.
//
// Why each admission condition is necessary for bit-identity:
//
//   - Distinct home slices: each slice must see the serial request order.
//     Two window accesses on one slice would race; one per slice (and per
//     line — same line implies same slice) keeps every slice's transaction
//     sequence, and therefore its private RNG draw order, serial.
//   - Distinct L1/L2 sets: probes run at dispatch, fills and invalidations
//     at commit. Replacement state (LRU ticks, RRIP bits, tree-PLRU bits)
//     is compared only within a set, so keeping each set's operations on a
//     single access preserves the serial within-set order even though the
//     absolute interleaving changes.
//   - Victim condition: a miss's fill may evict any line resident in its L2
//     set, and the eviction notifies that line's home slice at commit time —
//     after every dispatch. If a later access's transaction targeted that
//     slice, the notification would arrive behind a request that serially
//     follows it. Admission therefore scans the L2 set once and refuses any
//     later access homed on a slice a pending victim might notify.
//   - Shard budget: at most maxShardTxns window transactions per shard, so
//     the shard channels' capacity bounds hold and a commit-phase victim
//     eviction can always be injected without deadlock.
//
// Designs with housekeepers (randomized re-keying at transaction boundaries)
// mutate slice state outside this discipline; the scheduler detects them at
// construction and falls back to the serial per-access loop.
type windowScheduler struct {
	s      *Sharded
	e      *Engine
	maxWin int

	// Epoch-stamped marks: mark[i] == epoch means "claimed in the current
	// window". Bumping epoch clears every mark in O(1).
	epoch      uint32
	sliceMark  []uint32 // home slices claimed by window accesses
	victimMark []uint32 // slices a pending fill victim may notify
	l1Mark     []uint32 // private L1 sets claimed
	l2Mark     []uint32 // private L2 sets claimed
	shardEpoch []uint32
	shardCnt   []uint8 // window transactions in flight per shard

	acc  []winAccess // current window, cap maxWin
	txns []txn       // one preallocated transaction slot per window position

	// serialOnly is set for designs whose slices run housekeeping; their
	// batches replay through the plain Access loop.
	serialOnly bool

	stats WindowStats

	// onWindow, when non-nil, observes each committed window (test hook:
	// property tests assert the admission invariants on real partitions).
	onWindow func(c int, ops []BatchOp)
}

// WindowStats counts the scheduler's work. Occupancy — accesses per window —
// is the honest measure of how much overlap the workload's conflict
// structure permits.
type WindowStats struct {
	Accesses   uint64 // accesses scheduled through conflict windows
	Windows    uint64 // windows committed (size-1 windows included)
	Dispatched uint64 // slice transactions dispatched to shards
	Serial     uint64 // accesses bypassing windowing (housekeeping designs)
}

// Occupancy returns the mean window size, or 0 before any window committed.
func (w WindowStats) Occupancy() float64 {
	if w.Windows == 0 {
		return 0
	}
	return float64(w.Accesses) / float64(w.Windows)
}

// maxShardTxns bounds the window transactions concurrently in flight on one
// shard. Two fit the shard channel capacity with room for the one
// synchronous victim eviction a commit can inject (see the deadlock
// analysis on shardWorker).
const maxShardTxns = 2

// Window access classifications, mirroring the serial Access control flow.
const (
	wL1Read    uint8 = iota // L1 hit, read: no further work
	wL1Silent               // L1 hit, write, exclusive copy: silent store
	wL1Upgrade              // L1 hit, write, shared copy: directory upgrade
	wL2Read                 // L2 hit, read: install in L1
	wL2Silent               // L2 hit, write, exclusive copy
	wL2Upgrade              // L2 hit, write, shared copy
	wMiss                   // L2 miss: directory transaction
)

// winAccess is one dispatched access awaiting commit.
type winAccess struct {
	line  addr.Line
	write bool
	slice int32
	shard int32
	kind  uint8
	lost  bool // upgraded copy gone at commit (mirrors writeHit's lost)

	l1cur cachesim.Cursor
	l2cur cachesim.Cursor
	ls    *l2Line // L2 entry pointer for hits
	gen   uint32  // L2 generation at upgrade dispatch
	upLat int     // upgrade latency computed at dispatch
	t     *txn    // in-flight shard transaction, nil for pure hits
}

// newWindowScheduler builds a scheduler for windows of up to maxWin accesses.
func newWindowScheduler(s *Sharded, maxWin int) *windowScheduler {
	e := s.Engine
	ws := &windowScheduler{
		s:          s,
		e:          e,
		maxWin:     maxWin,
		sliceMark:  make([]uint32, e.cfg.Cores),
		victimMark: make([]uint32, e.cfg.Cores),
		l1Mark:     make([]uint32, e.cfg.L1Sets),
		l2Mark:     make([]uint32, e.cfg.L2Sets),
		shardEpoch: make([]uint32, len(s.workers)),
		shardCnt:   make([]uint8, len(s.workers)),
		acc:        make([]winAccess, 0, maxWin),
		txns:       make([]txn, maxWin),
	}
	for _, hk := range e.housekeepers {
		if hk != nil {
			ws.serialOnly = true
			break
		}
	}
	return ws
}

// accessBatch runs a batch of same-core accesses through conflict windows.
func (ws *windowScheduler) accessBatch(c int, ops []BatchOp, res []AccessResult) {
	e := ws.e
	if ws.serialOnly {
		ws.stats.Serial += uint64(len(ops))
		for i, op := range ops {
			res[i] = e.Access(c, op.Line, op.Write)
		}
		return
	}
	for i := 0; i < len(ops); {
		ws.epoch++
		if ws.epoch == 0 {
			// uint32 wrap: stale marks could alias the new epoch and force
			// spurious (safe) boundaries forever; clear and restart at 1.
			clear(ws.sliceMark)
			clear(ws.victimMark)
			clear(ws.l1Mark)
			clear(ws.l2Mark)
			clear(ws.shardEpoch)
			ws.epoch = 1
		}
		acc := ws.acc[:0]
		for i+len(acc) < len(ops) && len(acc) < ws.maxWin {
			op := ops[i+len(acc)]
			if !ws.admit(c, op.Line) {
				break
			}
			acc = append(acc, winAccess{})
			ws.dispatch(c, op, &acc[len(acc)-1], len(acc)-1)
		}
		if len(acc) == 0 {
			// Defensive: admission of the first access of a fresh window
			// cannot fail, but never spin if it somehow does.
			res[i] = e.Access(c, ops[i].Line, ops[i].Write)
			ws.stats.Windows++
			ws.stats.Accesses++
			i++
			continue
		}
		ws.stats.Windows++
		ws.stats.Accesses += uint64(len(acc))
		if ws.onWindow != nil {
			ws.onWindow(c, ops[i:i+len(acc)])
		}
		ws.commit(c, acc, res[i:])
		i += len(acc)
	}
}

// admit checks the access against the current window's marks and, if it is
// conflict-free, claims its slice, sets, shard slot and victim slices.
func (ws *windowScheduler) admit(c int, line addr.Line) bool {
	e := ws.e
	sl := e.mapper.Slice(line)
	if ws.sliceMark[sl] == ws.epoch || ws.victimMark[sl] == ws.epoch {
		return false
	}
	l1s := e.l1[c].SetOf(line)
	if ws.l1Mark[l1s] == ws.epoch {
		return false
	}
	l2s := e.l2[c].SetOf(line)
	if ws.l2Mark[l2s] == ws.epoch {
		return false
	}
	shard := ws.s.owner[sl]
	if ws.shardEpoch[shard] == ws.epoch && ws.shardCnt[shard] >= maxShardTxns {
		return false
	}
	if ws.shardEpoch[shard] != ws.epoch {
		ws.shardEpoch[shard] = ws.epoch
		ws.shardCnt[shard] = 0
	}
	ws.shardCnt[shard]++
	ws.sliceMark[sl] = ws.epoch
	ws.l1Mark[l1s] = ws.epoch
	ws.l2Mark[l2s] = ws.epoch
	// Any line now resident in this access's L2 set is a potential fill
	// victim whose eviction notifies its home slice at commit time; no later
	// access may target those slices. Residents only shrink during the
	// window (sets are disjoint, so no same-window fill lands here), making
	// this scan a safe superset of the commit-time victim.
	e.l2[c].RangeSet(l2s, func(v addr.Line) bool {
		ws.victimMark[e.mapper.Slice(v)] = ws.epoch
		return true
	})
	return true
}

// dispatch probes the private caches in program order, classifies the access
// and sends its slice transaction (if any) to the home shard without
// waiting. idx is the access's position in the window.
func (ws *windowScheduler) dispatch(c int, op BatchOp, a *winAccess, idx int) {
	e := ws.e
	a.line, a.write = op.Line, op.Write
	sl := e.mapper.Slice(op.Line)
	a.slice = int32(sl)
	a.shard = int32(ws.s.owner[sl])
	e.stats.Core[c].Accesses++

	_, l1slot, l1cur := e.l1[c].AccessCursor(op.Line)
	a.l1cur = l1cur
	if l1slot >= 0 {
		if !op.Write {
			a.kind = wL1Read
			return
		}
		ls, ok := e.l2[c].Probe(op.Line)
		if !ok {
			panic("coherence: L1 line not present in L2 (subset invariant)")
		}
		a.ls = ls
		if ls.Excl {
			a.kind = wL1Silent
			return
		}
		a.kind = wL1Upgrade
		ws.sendUpgrade(c, a, idx)
		return
	}

	ls, l2slot, l2cur := e.l2[c].AccessCursor(op.Line)
	a.l2cur = l2cur
	if l2slot >= 0 {
		a.ls = ls
		if !op.Write {
			a.kind = wL2Read
			return
		}
		if ls.Excl {
			a.kind = wL2Silent
			return
		}
		a.kind = wL2Upgrade
		ws.sendUpgrade(c, a, idx)
		return
	}

	a.kind = wMiss
	a.t = &ws.txns[idx]
	ws.stats.Dispatched++
	ws.s.send(int(a.shard), shardReq{
		kind: reqMiss, slice: a.slice, core: int32(c), line: a.line, flag: a.write,
	}, a.t)
}

// sendUpgrade computes the upgrade's latency contribution (directory round
// trip plus the SecDir VD/mitigation term — the slice is untouched by the
// rest of the window, so probing it at dispatch reads the same state the
// serial engine would) and dispatches the upgrade transaction.
func (ws *windowScheduler) sendUpgrade(c int, a *winAccess, idx int) {
	e := ws.e
	sl := int(a.slice)
	lat := e.dirLatency(c, sl)
	if e.cfg.Kind == config.SecDir {
		if _, w, _ := e.secSlices[sl].Find(a.line); w == directory.WhereVD {
			lat += e.cfg.Lat.EBCheck + e.cfg.Lat.VDAccess
		} else {
			lat += e.mitigationPad(true)
		}
	}
	a.upLat = lat
	a.gen = e.l2[c].Gen()
	a.t = &ws.txns[idx]
	ws.stats.Dispatched++
	ws.s.send(int(a.shard), shardReq{
		kind: reqUpgrade, slice: a.slice, core: int32(c), line: a.line,
	}, a.t)
}

// commit applies the window's results strictly in program order.
func (ws *windowScheduler) commit(c int, acc []winAccess, res []AccessResult) {
	for k := range acc {
		a := &acc[k]
		switch a.kind {
		case wL1Read, wL1Silent, wL1Upgrade:
			res[k] = ws.commitL1(c, a)
		case wL2Read, wL2Silent, wL2Upgrade:
			res[k] = ws.commitL2(c, a)
		default:
			res[k] = ws.commitMiss(c, a)
		}
	}
}

// commitL1 finishes an L1 hit, mirroring the serial Access L1 path.
func (ws *windowScheduler) commitL1(c int, a *winAccess) AccessResult {
	e := ws.e
	e.stats.Core[c].L1Hits++
	lat := e.cfg.Lat.L1RT
	switch a.kind {
	case wL1Silent:
		a.ls.Dirty = true
	case wL1Upgrade:
		lat += ws.commitUpgrade(c, a)
	}
	if e.log != nil {
		e.emit(Event{Kind: OpAccess, Core: c, Line: a.line, Level: LevelL1, Write: a.write})
	}
	e.recordAccess(LevelL1, lat)
	return AccessResult{Level: LevelL1, Latency: lat}
}

// commitL2 finishes an L2 hit, mirroring the serial Access L2 path.
func (ws *windowScheduler) commitL2(c int, a *winAccess) AccessResult {
	e := ws.e
	e.stats.Core[c].L2Hits++
	lat := e.cfg.Lat.L2RT
	switch a.kind {
	case wL2Silent:
		a.ls.Dirty = true
	case wL2Upgrade:
		lat += ws.commitUpgrade(c, a)
	}
	if !a.lost {
		e.l1[c].PutAt(a.l1cur, a.line, struct{}{})
	}
	if e.log != nil {
		e.emit(Event{Kind: OpAccess, Core: c, Line: a.line, Level: LevelL2, Write: a.write})
	}
	e.recordAccess(LevelL2, lat)
	return AccessResult{Level: LevelL2, Latency: lat}
}

// commitUpgrade completes a dispatched S->M upgrade: the tail of writeHit.
// Windowed designs have no housekeepers, so the only way the writer's entry
// pointer goes stale is an earlier commit's invalidation moving the L2
// generation — the re-probe then finds the line again (upgrades never
// invalidate the writer).
func (ws *windowScheduler) commitUpgrade(c int, a *winAccess) int {
	e := ws.e
	s := ws.s
	s.await(int(a.shard), a.t)
	e.apply(c, a.t.resp.acts)
	s.release(a.t)
	e.stats.Core[c].Upgrades++
	if e.mx != nil {
		e.mx.msgUpgrade.Inc()
	}
	ls := a.ls
	if e.l2[c].Gen() != a.gen {
		var ok bool
		ls, ok = e.l2[c].Probe(a.line)
		if !ok {
			a.lost = true
			return a.upLat
		}
	}
	ls.Excl = true
	ls.Dirty = true
	return a.upLat
}

// commitMiss completes a dispatched L2 miss: the tail of the serial Access
// miss path, verbatim — same latency formula, same counters, same fill and
// victim-eviction mechanics (the eviction runs as a synchronous router call
// on the victim's home shard).
func (ws *windowScheduler) commitMiss(c int, a *winAccess) AccessResult {
	e := ws.e
	st := &e.stats.Core[c]
	if mx := e.mx; mx != nil {
		if a.write {
			mx.msgGetX.Inc()
		} else {
			mx.msgGetS.Inc()
		}
	}
	slice := int(a.slice)
	ws.s.await(int(a.shard), a.t)
	res := a.t.resp.miss
	e.apply(c, res.Actions)

	lat := e.cfg.Lat.L2RT + e.dirLatency(c, slice)
	if res.VDConsulted {
		rounds := int(res.VDBatchRounds)
		if rounds < 1 {
			rounds = 1
		}
		if e.cfg.VDEmptyBit {
			lat += e.cfg.Lat.EBCheck
			if res.VDBanksProbed > 0 {
				lat += e.cfg.Lat.VDAccess * rounds
			}
		} else {
			lat += e.cfg.Lat.VDAccess * rounds
		}
	} else if e.cfg.Kind == config.SecDir {
		lat += e.mitigationPad(res.Source == directory.SourceRemoteL2 || hasInvalidation(res.Actions))
	}
	var level Level
	switch res.Where {
	case directory.WhereED, directory.WhereTD:
		st.MissEDTD++
		level = LevelEDTD
	case directory.WhereVD:
		st.MissVD++
		level = LevelVD
	default:
		st.MissMem++
		level = LevelMemory
	}
	switch res.Source {
	case directory.SourceMemory:
		lat += e.cfg.Lat.DRAMRT
	case directory.SourceRemoteL2:
		lat += e.cfg.Lat.CacheToCore
		if !a.write {
			if fs, ok := e.l2[res.SrcCore].Probe(a.line); ok {
				fs.Excl = false
				if e.cfg.Protocol == config.MESI && fs.Dirty {
					fs.Dirty = false
					e.stats.MemWritebacks++
					if e.mx != nil {
						e.mx.writebacks.Inc()
					}
				}
			}
		}
	}
	if mlp := e.cfg.Lat.MLP; mlp > 1 {
		lat /= mlp
	}
	if e.log != nil {
		e.emit(Event{Kind: OpAccess, Core: c, Line: a.line, Level: level, Write: a.write})
	}
	e.recordAccess(level, lat)
	if res.NoFill {
		st.NoFills++
		if e.mx != nil {
			e.mx.noFills.Inc()
		}
		ws.s.release(a.t)
		return AccessResult{Level: level, Latency: lat, NoFill: true}
	}
	// res.Actions (aliasing the mailbox) is fully consumed above; recycle it
	// before the fill so the victim eviction's own transaction can reuse it.
	exclusive := a.write || res.Exclusive
	ws.s.release(a.t)
	if e.fillL2At(c, a.l2cur, a.line, l2Line{Dirty: a.write, Excl: exclusive}) {
		e.l1[c].PutAt(a.l1cur, a.line, struct{}{})
	}
	return AccessResult{Level: level, Latency: lat}
}
