package coherence

import (
	"fmt"

	"secdir/internal/addr"
	"secdir/internal/config"
	"secdir/internal/directory"
)

// Sharded partitions the engine's directory slices across shard goroutines.
// Shard i owns every slice s with s % shards == i; a slice transaction
// (miss, upgrade, eviction notification, housekeeping) executes on its home
// shard's goroutine, and the coherence actions it emits accumulate in a
// per-transaction mailbox the response hands back. The coordinator — the
// goroutine calling Access — applies the actions to the private caches it
// owns at the transaction boundary, exactly where the serial engine applies
// them, then recycles the mailbox.
//
// Determinism is by construction, not by luck: the coordinator keeps at most
// one transaction in flight per *slice* (the window scheduler guarantees the
// slices of concurrently dispatched accesses are distinct; the synchronous
// call path keeps one in flight globally), so every slice observes the
// identical request sequence the serial engine would issue, every
// slice-private RNG draws in the identical order, and the mailboxes drain at
// the identical points. The results are therefore bit-identical to the serial
// Engine for any shard count and any GOMAXPROCS — the oracle and stress tests
// pin this.
//
// Like the serial Engine, a Sharded engine serves one coordinator: its
// methods must not be called concurrently. Close releases the shard
// goroutines; the embedded engine stays usable serially afterwards.
type Sharded struct {
	*Engine
	workers []*shardWorker
	owner   []int // slice -> index into workers

	// pool recycles transaction mailboxes; sync is the reusable transaction
	// of the synchronous call path.
	pool [][]directory.Action
	sync txn
}

// shardReq identifies one slice transaction for a shard to execute. mailbox
// is the coordinator-provided buffer the shard fills and hands back in its
// response; the channel hand-offs transfer ownership in both directions.
type shardReq struct {
	kind    uint8
	slice   int32
	core    int32
	line    addr.Line
	flag    bool // write (miss) or dirty (eviction)
	mailbox []directory.Action
}

// Request kinds.
const (
	reqMiss uint8 = iota
	reqUpgrade
	reqL2Evict
	reqHousekeep
)

// shardResp carries a transaction's results back to the coordinator. acts
// (or miss.Actions for a miss) is the request's mailbox, now filled; the
// coordinator owns it again and recycles it after applying.
type shardResp struct {
	miss directory.MissResult
	acts []directory.Action
}

// txn tracks one in-flight transaction. A shard executes requests in the
// order received and responds in that same order, so the coordinator matches
// responses to transactions through a per-shard FIFO of pending txns.
type txn struct {
	resp shardResp
	done bool
}

// shardWorker is one shard: a goroutine owning a subset of slices, its
// request/response pair, and the FIFO of transactions awaiting responses.
// The channels are buffered so a shard can accept the next window's request
// while the coordinator is still applying the previous response — at most
// two transactions are ever outstanding per shard (one window access plus
// one synchronous victim eviction from another access's commit).
type shardWorker struct {
	req     chan shardReq
	resp    chan shardResp
	pending pendQ
}

// pendQ is a small FIFO of pending transactions.
type pendQ struct {
	buf  []*txn
	head int
}

func (q *pendQ) push(t *txn) { q.buf = append(q.buf, t) }

func (q *pendQ) pop() *txn {
	t := q.buf[q.head]
	q.buf[q.head] = nil
	q.head++
	if q.head == len(q.buf) {
		q.buf = q.buf[:0]
		q.head = 0
	}
	return t
}

// NewSharded builds a machine whose directory slices are distributed over
// the given number of shards (clamped to [1, cores]). The underlying
// machine is constructed exactly like NewEngine's, so a Sharded engine and
// a serial Engine built from the same configuration start bit-identical.
func NewSharded(cfg config.Config, shards int) (*Sharded, error) {
	e, err := NewEngine(cfg)
	if err != nil {
		return nil, err
	}
	if shards < 1 {
		return nil, fmt.Errorf("coherence: shard count %d < 1", shards)
	}
	if shards > cfg.Cores {
		shards = cfg.Cores
	}
	s := &Sharded{
		Engine:  e,
		workers: make([]*shardWorker, shards),
		owner:   make([]int, cfg.Cores),
	}
	for i := range s.workers {
		w := &shardWorker{
			req:  make(chan shardReq, 2),
			resp: make(chan shardResp, 2),
		}
		s.workers[i] = w
		go w.run(e)
	}
	for sl := range s.owner {
		s.owner[sl] = sl % shards
	}
	e.router = s
	return s, nil
}

// tdedActionCap pre-sizes a transaction mailbox: a transition chain emits at
// most a couple of actions per sharer and the simulator caps sharers at 64.
const tdedActionCap = 64

// Shards returns the number of shard goroutines.
func (s *Sharded) Shards() int { return len(s.workers) }

// ShardOf returns the shard owning the given slice.
func (s *Sharded) ShardOf(slice int) int { return s.owner[slice] }

// SetWindow configures the conflict-window scheduler AccessBatch dispatches
// through: windows of up to n conflict-free accesses run their slice
// transactions on their home shards concurrently. n <= 1 disables windowing
// (AccessBatch degrades to the serial per-access loop). Must not be called
// while a batch is in flight.
func (s *Sharded) SetWindow(n int) {
	if n <= 1 {
		s.Engine.winSched = nil
		return
	}
	s.Engine.winSched = newWindowScheduler(s, n)
}

// WindowStats returns the scheduler's occupancy counters, or zeros when
// windowing is disabled.
func (s *Sharded) WindowStats() WindowStats {
	if ws := s.Engine.winSched; ws != nil {
		return ws.stats
	}
	return WindowStats{}
}

// Close stops the shard goroutines. The engine reverts to serial slice
// dispatch, so reads of final state (stats, occupancy scans) keep working.
func (s *Sharded) Close() {
	if s.Engine.router == nil {
		return
	}
	s.Engine.router = nil
	s.Engine.winSched = nil
	for _, w := range s.workers {
		close(w.req)
	}
}

// getMailbox takes a recycled mailbox from the pool (or grows one).
func (s *Sharded) getMailbox() []directory.Action {
	if n := len(s.pool); n > 0 {
		mb := s.pool[n-1]
		s.pool[n-1] = nil
		s.pool = s.pool[:n-1]
		return mb
	}
	return make([]directory.Action, 0, tdedActionCap)
}

// release recycles a completed transaction's mailbox. The caller must be
// done reading the response's actions (and MissResult fields that alias it).
func (s *Sharded) release(t *txn) {
	mb := t.resp.acts
	if mb == nil {
		mb = t.resp.miss.Actions
	}
	if mb != nil {
		s.pool = append(s.pool, mb[:0])
	}
	t.resp = shardResp{}
	t.done = false
}

// send dispatches a transaction to the slice's home shard without waiting
// for its response. The caller owns t until await reports it done.
func (s *Sharded) send(shard int, r shardReq, t *txn) {
	r.mailbox = s.getMailbox()
	w := s.workers[shard]
	w.pending.push(t)
	w.req <- r
}

// await blocks until transaction t — previously sent to the given shard —
// has its response. Shards respond in request order, so each received
// response completes the oldest pending transaction.
func (s *Sharded) await(shard int, t *txn) {
	w := s.workers[shard]
	for !t.done {
		p := w.pending.pop()
		p.resp = <-w.resp
		p.done = true
	}
}

// call executes one transaction synchronously on the slice's home shard.
// The returned response's actions stay valid until the next call (the
// previous sync mailbox is recycled lazily at the next send, by which time
// the engine has finished applying it).
func (s *Sharded) call(r shardReq) shardResp {
	if s.sync.done {
		s.release(&s.sync)
	}
	shard := s.owner[r.slice]
	s.send(shard, r, &s.sync)
	s.await(shard, &s.sync)
	return s.sync.resp
}

// routeMiss implements sliceRouter.
func (s *Sharded) routeMiss(slice, c int, line addr.Line, write bool) directory.MissResult {
	return s.call(shardReq{kind: reqMiss, slice: int32(slice), core: int32(c), line: line, flag: write}).miss
}

// routeUpgrade implements sliceRouter.
func (s *Sharded) routeUpgrade(slice, c int, line addr.Line) []directory.Action {
	return s.call(shardReq{kind: reqUpgrade, slice: int32(slice), core: int32(c), line: line}).acts
}

// routeL2Evict implements sliceRouter.
func (s *Sharded) routeL2Evict(slice, c int, line addr.Line, dirty bool) []directory.Action {
	return s.call(shardReq{kind: reqL2Evict, slice: int32(slice), core: int32(c), line: line, flag: dirty}).acts
}

// routeHousekeep implements sliceRouter.
func (s *Sharded) routeHousekeep(slice int) []directory.Action {
	return s.call(shardReq{kind: reqHousekeep, slice: int32(slice)}).acts
}

// run is the shard goroutine: it executes each requested transaction against
// the slices it owns, batching the emitted coherence actions into the
// request's mailbox, which the response hands back to the coordinator.
func (w *shardWorker) run(e *Engine) {
	for r := range w.req {
		mb := r.mailbox[:0]
		var resp shardResp
		switch r.kind {
		case reqMiss:
			m := e.sliceMissLocal(int(r.slice), int(r.core), r.line, r.flag)
			mb = append(mb, m.Actions...)
			m.Actions = mb
			resp.miss = m
		case reqUpgrade:
			resp.acts = append(mb, e.sliceUpgradeLocal(int(r.slice), int(r.core), r.line)...)
		case reqL2Evict:
			resp.acts = append(mb, e.sliceL2EvictLocal(int(r.slice), int(r.core), r.line, r.flag)...)
		case reqHousekeep:
			resp.acts = append(mb, e.housekeepers[r.slice].Housekeep()...)
		}
		w.resp <- resp
	}
}
