package coherence

import (
	"fmt"

	"secdir/internal/addr"
	"secdir/internal/config"
	"secdir/internal/directory"
)

// Sharded partitions the engine's directory slices across shard goroutines.
// Shard i owns every slice s with s % shards == i; a slice transaction
// (miss, upgrade, eviction notification, housekeeping) executes on its home
// shard's goroutine, and the coherence actions it emits accumulate in that
// shard's mailbox. The coordinator — the goroutine calling Access — drains
// the mailbox at the transaction boundary and applies the actions to the
// private caches it owns, exactly where the serial engine applies them.
//
// Determinism is by construction, not by luck: the coordinator keeps at most
// one slice transaction in flight, so every slice observes the identical
// request sequence the serial engine would issue, every slice-private RNG
// draws in the identical order, and the mailbox drains at the identical
// points. The results are therefore bit-identical to the serial Engine for
// any shard count and any GOMAXPROCS — the oracle and stress tests pin this.
// What sharding buys is an enforced ownership discipline (each slice's state
// is touched by exactly one goroutine, which the race detector can check)
// and the structural split a future overlapping-transaction scheduler needs;
// it does not buy wall-clock speedup while transactions stay serialized.
//
// Like the serial Engine, a Sharded engine serves one coordinator: its
// methods must not be called concurrently. Close releases the shard
// goroutines; the embedded engine stays usable serially afterwards.
type Sharded struct {
	*Engine
	workers []*shardWorker
	owner   []int // slice -> index into workers
}

// shardReq identifies one slice transaction for a shard to execute.
type shardReq struct {
	kind  uint8
	slice int32
	core  int32
	line  addr.Line
	flag  bool // write (miss) or dirty (eviction)
}

// Request kinds.
const (
	reqMiss uint8 = iota
	reqUpgrade
	reqL2Evict
	reqHousekeep
)

// shardResp carries a transaction's results back to the coordinator. acts
// aliases the shard's mailbox: the coordinator must finish applying it
// before sending the shard its next request (which resets the mailbox).
// The channel hand-off orders the shard's writes before the coordinator's
// reads.
type shardResp struct {
	miss directory.MissResult
	acts []directory.Action
}

// shardWorker is one shard: a goroutine owning a subset of slices, its
// request/response pair, and its coherence mailbox.
type shardWorker struct {
	req     chan shardReq
	resp    chan shardResp
	mailbox []directory.Action
}

// NewSharded builds a machine whose directory slices are distributed over
// the given number of shards (clamped to [1, cores]). The underlying
// machine is constructed exactly like NewEngine's, so a Sharded engine and
// a serial Engine built from the same configuration start bit-identical.
func NewSharded(cfg config.Config, shards int) (*Sharded, error) {
	e, err := NewEngine(cfg)
	if err != nil {
		return nil, err
	}
	if shards < 1 {
		return nil, fmt.Errorf("coherence: shard count %d < 1", shards)
	}
	if shards > cfg.Cores {
		shards = cfg.Cores
	}
	s := &Sharded{
		Engine:  e,
		workers: make([]*shardWorker, shards),
		owner:   make([]int, cfg.Cores),
	}
	for i := range s.workers {
		w := &shardWorker{
			req:     make(chan shardReq),
			resp:    make(chan shardResp),
			mailbox: make([]directory.Action, 0, tdedActionCap),
		}
		s.workers[i] = w
		go w.run(e)
	}
	for sl := range s.owner {
		s.owner[sl] = sl % shards
	}
	e.router = s
	return s, nil
}

// tdedActionCap pre-sizes a shard mailbox: a transition chain emits at most
// a couple of actions per sharer and the simulator caps sharers at 64.
const tdedActionCap = 64

// Shards returns the number of shard goroutines.
func (s *Sharded) Shards() int { return len(s.workers) }

// ShardOf returns the shard owning the given slice.
func (s *Sharded) ShardOf(slice int) int { return s.owner[slice] }

// Close stops the shard goroutines. The engine reverts to serial slice
// dispatch, so reads of final state (stats, occupancy scans) keep working.
func (s *Sharded) Close() {
	if s.Engine.router == nil {
		return
	}
	s.Engine.router = nil
	for _, w := range s.workers {
		close(w.req)
	}
}

// call executes one transaction on the slice's home shard and returns its
// response with the drained mailbox.
func (s *Sharded) call(r shardReq) shardResp {
	w := s.workers[s.owner[r.slice]]
	w.req <- r
	return <-w.resp
}

// routeMiss implements sliceRouter.
func (s *Sharded) routeMiss(slice, c int, line addr.Line, write bool) directory.MissResult {
	return s.call(shardReq{kind: reqMiss, slice: int32(slice), core: int32(c), line: line, flag: write}).miss
}

// routeUpgrade implements sliceRouter.
func (s *Sharded) routeUpgrade(slice, c int, line addr.Line) []directory.Action {
	return s.call(shardReq{kind: reqUpgrade, slice: int32(slice), core: int32(c), line: line}).acts
}

// routeL2Evict implements sliceRouter.
func (s *Sharded) routeL2Evict(slice, c int, line addr.Line, dirty bool) []directory.Action {
	return s.call(shardReq{kind: reqL2Evict, slice: int32(slice), core: int32(c), line: line, flag: dirty}).acts
}

// routeHousekeep implements sliceRouter.
func (s *Sharded) routeHousekeep(slice int) []directory.Action {
	return s.call(shardReq{kind: reqHousekeep, slice: int32(slice)}).acts
}

// run is the shard goroutine: it executes each requested transaction against
// the slices it owns, batching the emitted coherence actions into the
// mailbox the response hands back for the coordinator to drain.
func (w *shardWorker) run(e *Engine) {
	for r := range w.req {
		w.mailbox = w.mailbox[:0]
		var resp shardResp
		switch r.kind {
		case reqMiss:
			m := e.sliceMissLocal(int(r.slice), int(r.core), r.line, r.flag)
			w.mailbox = append(w.mailbox, m.Actions...)
			m.Actions = w.mailbox
			resp.miss = m
		case reqUpgrade:
			w.mailbox = append(w.mailbox, e.sliceUpgradeLocal(int(r.slice), int(r.core), r.line)...)
			resp.acts = w.mailbox
		case reqL2Evict:
			w.mailbox = append(w.mailbox, e.sliceL2EvictLocal(int(r.slice), int(r.core), r.line, r.flag)...)
			resp.acts = w.mailbox
		case reqHousekeep:
			w.mailbox = append(w.mailbox, e.housekeepers[r.slice].Housekeep()...)
			resp.acts = w.mailbox
		}
		w.resp <- resp
	}
}
