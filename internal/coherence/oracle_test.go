package coherence

import (
	"math/rand"
	"testing"
	"testing/quick"

	"secdir/internal/addr"
	"secdir/internal/config"
)

// oracle is an abstract reference model of the coherence protocol's
// *observable* guarantees. It does not model capacity or conflicts (those
// are the engine's business); it tracks only what must be true regardless of
// structure sizes:
//
//   - after a write by core c, no other core may hit the line;
//   - a core that has not touched a line since it was last invalidated
//     cannot hit it;
//   - a hit is only possible if the core accessed the line before.
type oracle struct {
	// mayHold[line] is the set of cores that could legally hold the line.
	mayHold map[addr.Line]uint64
}

func newOracle() *oracle { return &oracle{mayHold: map[addr.Line]uint64{}} }

func (o *oracle) access(core int, line addr.Line, write bool) {
	if write {
		o.mayHold[line] = 1 << uint(core)
		return
	}
	o.mayHold[line] |= 1 << uint(core)
}

// mayHit reports whether a hit by core on line is legal.
func (o *oracle) mayHit(core int, line addr.Line) bool {
	return o.mayHold[line]&(1<<uint(core)) != 0
}

// TestEngineAgainstOracle drives random operations through the engine and
// the oracle in lockstep: every engine *hit* must be legal per the oracle
// (the engine may miss more often than the oracle allows, because of
// capacity and conflict evictions the oracle does not model — but it must
// never hit a line the protocol says the core cannot have).
func TestEngineAgainstOracle(t *testing.T) {
	for _, kind := range []config.DirectoryKind{config.Baseline, config.SecDir} {
		for _, fix := range []bool{true, false} {
			cfg := smallConfig(kind)
			cfg.AppendixAFix = fix || kind == config.SecDir
			e := newEngine(t, cfg)
			o := newOracle()
			rng := rand.New(rand.NewSource(99))
			for i := 0; i < 120000; i++ {
				c := rng.Intn(cfg.Cores)
				l := addr.Line(rng.Intn(1 << 13))
				w := rng.Intn(5) == 0
				res := e.Access(c, l, w)
				hit := res.Level == LevelL1 || res.Level == LevelL2
				if hit && !o.mayHit(c, l) {
					t.Fatalf("%v(fix=%v) step %d: core %d hit line %#x it cannot legally hold",
						kind, fix, i, c, uint64(l))
				}
				o.access(c, l, w)
			}
		}
	}
}

// TestEngineQuickSequences uses testing/quick to generate short operation
// sequences and validates both the oracle property and the full structural
// invariants at the end of each sequence.
func TestEngineQuickSequences(t *testing.T) {
	cfg := smallConfig(config.SecDir)
	f := func(ops []uint32) bool {
		e, err := NewEngine(cfg)
		if err != nil {
			return false
		}
		o := newOracle()
		for _, op := range ops {
			c := int(op % 4)
			l := addr.Line((op >> 2) % 4096)
			w := op%7 == 0
			res := e.Access(c, l, w)
			hit := res.Level == LevelL1 || res.Level == LevelL2
			if hit && !o.mayHit(c, l) {
				return false
			}
			o.access(c, l, w)
		}
		return e.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestWriteSerialization: after any interleaving, a written line has exactly
// one holder with the exclusive+dirty state.
func TestWriteSerialization(t *testing.T) {
	cfg := smallConfig(config.SecDir)
	e := newEngine(t, cfg)
	rng := rand.New(rand.NewSource(5))
	l := addr.Line(0x222)
	last := -1
	for i := 0; i < 2000; i++ {
		c := rng.Intn(cfg.Cores)
		if rng.Intn(3) == 0 {
			e.Access(c, l, true)
			last = c
		} else {
			e.Access(c, l, false)
		}
		// Whoever wrote last is the only core allowed to hold it dirty.
		for cc := 0; cc < cfg.Cores; cc++ {
			st, ok := e.l2[cc].Probe(l)
			if ok && st.Dirty && cc != last {
				t.Fatalf("step %d: core %d holds dirty data but core %d wrote last", i, cc, last)
			}
		}
	}
}
