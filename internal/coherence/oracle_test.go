package coherence

import (
	"math/rand"
	"testing"
	"testing/quick"

	"secdir/internal/addr"
	"secdir/internal/config"
)

// oracle is an abstract reference model of the coherence protocol's
// *observable* guarantees. It does not model capacity or conflicts (those
// are the engine's business); it tracks only what must be true regardless of
// structure sizes:
//
//   - after a write by core c, no other core may hit the line;
//   - a core that has not touched a line since it was last invalidated
//     cannot hit it;
//   - a hit is only possible if the core accessed the line before.
type oracle struct {
	// mayHold[line] is the set of cores that could legally hold the line.
	mayHold map[addr.Line]uint64
}

func newOracle() *oracle { return &oracle{mayHold: map[addr.Line]uint64{}} }

func (o *oracle) access(core int, line addr.Line, write bool) {
	if write {
		o.mayHold[line] = 1 << uint(core)
		return
	}
	o.mayHold[line] |= 1 << uint(core)
}

// mayHit reports whether a hit by core on line is legal.
func (o *oracle) mayHit(core int, line addr.Line) bool {
	return o.mayHold[line]&(1<<uint(core)) != 0
}

// TestEngineAgainstOracle drives random operations through the engine and
// the oracle in lockstep: every engine *hit* must be legal per the oracle
// (the engine may miss more often than the oracle allows, because of
// capacity and conflict evictions the oracle does not model — but it must
// never hit a line the protocol says the core cannot have).
func TestEngineAgainstOracle(t *testing.T) {
	kinds := []config.DirectoryKind{
		config.Baseline, config.SecDir, config.WayPartitioned, config.RandMapped,
		config.SkewedDir, config.DLS, config.TagPartitioned, config.Ceaser,
	}
	for _, kind := range kinds {
		fixes := []bool{true}
		if kind == config.Baseline {
			fixes = []bool{true, false}
		}
		for _, fix := range fixes {
			cfg := smallConfig(kind)
			cfg.AppendixAFix = fix
			e := newEngine(t, cfg)
			o := newOracle()
			rng := rand.New(rand.NewSource(99))
			for i := 0; i < 120000; i++ {
				c := rng.Intn(cfg.Cores)
				l := addr.Line(rng.Intn(1 << 13))
				w := rng.Intn(5) == 0
				res := e.Access(c, l, w)
				hit := res.Level == LevelL1 || res.Level == LevelL2
				if hit && !o.mayHit(c, l) {
					t.Fatalf("%v(fix=%v) step %d: core %d hit line %#x it cannot legally hold",
						kind, fix, i, c, uint64(l))
				}
				o.access(c, l, w)
			}
			if err := e.CheckInvariants(); err != nil {
				t.Fatalf("%v(fix=%v): invariants violated after workload: %v", kind, fix, err)
			}
		}
	}
}

// TestEngineQuickSequences uses testing/quick to generate short operation
// sequences and validates both the oracle property and the full structural
// invariants at the end of each sequence.
func TestEngineQuickSequences(t *testing.T) {
	cfg := smallConfig(config.SecDir)
	f := func(ops []uint32) bool {
		e, err := NewEngine(cfg)
		if err != nil {
			return false
		}
		o := newOracle()
		for _, op := range ops {
			c := int(op % 4)
			l := addr.Line((op >> 2) % 4096)
			w := op%7 == 0
			res := e.Access(c, l, w)
			hit := res.Level == LevelL1 || res.Level == LevelL2
			if hit && !o.mayHit(c, l) {
				return false
			}
			o.access(c, l, w)
		}
		return e.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestDifferentialMemoryImage is a differential oracle across directory
// designs: one seeded workload is replayed bit-identically through the
// unfixed Skylake-X baseline, the Appendix-A-fixed baseline, and SecDir.
//
// Data is modeled by a shadow version counter per line (bumped on every
// write). For each design the test tracks the version each core last
// fetched or wrote; the coherence protocol guarantees that a private-cache
// hit always observes the line's current version (any intervening remote
// write must have invalidated the copy). At the end, structural invariants
// must hold and a read sweep from core 0 must build the same memory image —
// line -> observed version — in all three designs: capacity and conflict
// behaviour may differ, observable data may not.
func TestDifferentialMemoryImage(t *testing.T) {
	type op struct {
		core  int
		line  addr.Line
		write bool
	}
	const numOps = 60000
	rng := rand.New(rand.NewSource(2026))
	stream := make([]op, numOps)
	touched := map[addr.Line]bool{}
	for i := range stream {
		stream[i] = op{core: rng.Intn(4), line: addr.Line(rng.Intn(1 << 12)), write: rng.Intn(4) == 0}
		touched[stream[i].line] = true
	}
	var sweep []addr.Line
	for l := range touched {
		sweep = append(sweep, l)
	}

	unfixed := smallConfig(config.Baseline)
	unfixed.AppendixAFix = false
	fixed := smallConfig(config.Baseline)
	fixed.AppendixAFix = true
	designs := []struct {
		name string
		cfg  config.Config
	}{
		{"skylake-unfixed", unfixed},
		{"skylake-fixed", fixed},
		{"secdir", smallConfig(config.SecDir)},
		{"way-partitioned", smallConfig(config.WayPartitioned)},
		{"rand-mapped", smallConfig(config.RandMapped)},
		{"skewed", smallConfig(config.SkewedDir)},
		{"dls", smallConfig(config.DLS)},
		{"tag-partitioned", smallConfig(config.TagPartitioned)},
		{"ceaser", smallConfig(config.Ceaser)},
	}

	images := make([]map[addr.Line]uint64, len(designs))
	for di, d := range designs {
		e := newEngine(t, d.cfg)
		version := map[addr.Line]uint64{} // current data version per line
		held := make([]map[addr.Line]uint64, d.cfg.Cores)
		for c := range held {
			held[c] = map[addr.Line]uint64{}
		}
		access := func(i int, o op) {
			res := e.Access(o.core, o.line, o.write)
			if res.Level == LevelL1 || res.Level == LevelL2 {
				if held[o.core][o.line] != version[o.line] {
					t.Fatalf("%s step %d: core %d hit line %#x at version %d, current is %d (stale data)",
						d.name, i, o.core, uint64(o.line), held[o.core][o.line], version[o.line])
				}
			} else if !res.NoFill {
				// Miss with fill: the fetch returns the current version,
				// forwarded from the owner or from memory.
				held[o.core][o.line] = version[o.line]
			}
			if o.write {
				version[o.line]++
				held[o.core][o.line] = version[o.line]
			}
		}
		for i, o := range stream {
			access(i, o)
		}
		if err := e.CheckInvariants(); err != nil {
			t.Fatalf("%s: invariants violated after workload: %v", d.name, err)
		}
		// Final read sweep from core 0 builds the observable memory image.
		img := make(map[addr.Line]uint64, len(sweep))
		for i, l := range sweep {
			access(numOps+i, op{core: 0, line: l})
			img[l] = held[0][l]
		}
		if err := e.CheckInvariants(); err != nil {
			t.Fatalf("%s: invariants violated after sweep: %v", d.name, err)
		}
		images[di] = img
	}

	base := images[0]
	for di := 1; di < len(designs); di++ {
		for l, v := range base {
			if got := images[di][l]; got != v {
				t.Errorf("memory image diverges at line %#x: %s observed version %d, %s observed %d",
					uint64(l), designs[0].name, v, designs[di].name, got)
			}
		}
	}
}

// TestWriteSerialization: after any interleaving, a written line has exactly
// one holder with the exclusive+dirty state.
func TestWriteSerialization(t *testing.T) {
	cfg := smallConfig(config.SecDir)
	e := newEngine(t, cfg)
	rng := rand.New(rand.NewSource(5))
	l := addr.Line(0x222)
	last := -1
	for i := 0; i < 2000; i++ {
		c := rng.Intn(cfg.Cores)
		if rng.Intn(3) == 0 {
			e.Access(c, l, true)
			last = c
		} else {
			e.Access(c, l, false)
		}
		// Whoever wrote last is the only core allowed to hold it dirty.
		for cc := 0; cc < cfg.Cores; cc++ {
			st, ok := e.l2[cc].Probe(l)
			if ok && st.Dirty && cc != last {
				t.Fatalf("step %d: core %d holds dirty data but core %d wrote last", i, cc, last)
			}
		}
	}
}
