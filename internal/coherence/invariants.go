package coherence

import (
	"fmt"

	"secdir/internal/addr"
	"secdir/internal/core"
	"secdir/internal/directory"
)

// entryRanger is the merged entry walk that single-structure directory
// designs expose for invariant checks and conformance tests.
type entryRanger interface {
	ForEach(fn func(l addr.Line, m directory.Meta, w directory.Where) bool)
}

// CheckInvariants verifies the global coherence invariants and returns the
// first violation found. It is O(cached lines) and intended for tests and
// property-based fuzzing, not for the hot path.
//
// Invariants:
//  1. L1 is a subset of L2 on every core.
//  2. Every line cached in a private L2 has exactly one directory entry
//     (ED, TD, or a VD presence) whose sharer vector includes the core.
//  3. ED entries have at least one sharer and never LLC data.
//  4. TD entries have sharers or LLC data (or they would have been dropped).
//  5. Every sharer bit in an ED/TD entry corresponds to a cached L2 line;
//     every VD bank entry corresponds to a line in the owner's L2.
//  6. A line has an entry in at most one structure (ED xor TD xor VDs).
//  7. An Exclusive/Modified private copy is the only copy in the machine.
func (e *Engine) CheckInvariants() error {
	// 1 & 2 & 7: walk private caches.
	for c := 0; c < e.cfg.Cores; c++ {
		var err error
		e.l1[c].Range(func(l addr.Line, _ *struct{}) bool {
			if _, ok := e.l2[c].Probe(l); !ok {
				err = fmt.Errorf("core %d: L1 line %#x not in L2", c, uint64(l))
				return false
			}
			return true
		})
		if err != nil {
			return err
		}
		cc := c
		e.l2[cc].Range(func(l addr.Line, st *l2Line) bool {
			m, _, ok := e.slices[e.mapper.Slice(l)].Find(l)
			switch {
			case !ok:
				err = fmt.Errorf("core %d: L2 line %#x has no directory entry", cc, uint64(l))
			case !m.Sharers.Has(cc):
				err = fmt.Errorf("core %d: L2 line %#x entry lacks sharer bit (sharers=%b)", cc, uint64(l), m.Sharers)
			case st.Excl && m.Sharers.Count() != 1:
				err = fmt.Errorf("core %d: exclusive line %#x has %d sharers", cc, uint64(l), m.Sharers.Count())
			}
			return err == nil
		})
		if err != nil {
			return err
		}
	}

	// 3-6: walk the directory slices.
	for si, sl := range e.slices {
		var tded *directory.TDED
		var vdOf func(c int) interface {
			Contains(addr.Line) bool
			Lines() []addr.Line
		}
		switch s := sl.(type) {
		case *directory.BaselineSlice:
			tded = s.TDED()
		case *directory.RandMapSlice:
			tded = s.TDED()
		case *directory.CeaserSlice:
			tded = s.TDED()
		case *core.Slice:
			tded = s.TDED()
			ss := s
			vdOf = func(c int) interface {
				Contains(addr.Line) bool
				Lines() []addr.Line
			} {
				return ss.VDBank(c)
			}
		case entryRanger:
			// Single-structure designs (way-partitioned, skewed, DLS,
			// tag-partitioned) expose a merged entry walk; the shared rules
			// apply — a data-less (ED-role) entry must have sharers, and
			// every sharer bit must correspond to a cached L2 line.
			var werr error
			s.ForEach(func(l addr.Line, m directory.Meta, w directory.Where) bool {
				if w == directory.WhereED && m.Sharers == 0 {
					werr = fmt.Errorf("slice %d (%T): data-less entry %#x has no sharers", si, sl, uint64(l))
					return false
				}
				if w == directory.WhereTD && m.Sharers == 0 && !m.HasData {
					werr = fmt.Errorf("slice %d (%T): entry %#x has neither sharers nor data", si, sl, uint64(l))
					return false
				}
				m.Sharers.ForEach(func(c int) {
					if werr == nil {
						if _, ok := e.l2[c].Probe(l); !ok {
							werr = fmt.Errorf("slice %d (%T): %v entry %#x lists non-caching sharer %d", si, sl, w, uint64(l), c)
						}
					}
				})
				return werr == nil
			})
			if werr != nil {
				return werr
			}
			continue
		default:
			return fmt.Errorf("slice %d: unknown directory type %T", si, sl)
		}

		var err error
		check := func(where directory.Where) func(l addr.Line, m *directory.Meta) bool {
			return func(l addr.Line, m *directory.Meta) bool {
				if where == directory.WhereED {
					if m.Sharers == 0 {
						err = fmt.Errorf("slice %d: ED entry %#x has no sharers", si, uint64(l))
						return false
					}
					if m.HasData {
						err = fmt.Errorf("slice %d: ED entry %#x claims LLC data", si, uint64(l))
						return false
					}
					if _, ok := tded.TD.Probe(l); ok {
						err = fmt.Errorf("slice %d: line %#x in both ED and TD", si, uint64(l))
						return false
					}
				} else if m.Sharers == 0 && !m.HasData {
					err = fmt.Errorf("slice %d: TD entry %#x has neither sharers nor data", si, uint64(l))
					return false
				}
				m.Sharers.ForEach(func(c int) {
					if err == nil {
						if _, ok := e.l2[c].Probe(l); !ok {
							err = fmt.Errorf("slice %d: %v entry %#x lists non-caching sharer %d", si, where, uint64(l), c)
						}
					}
				})
				if err == nil && vdOf != nil {
					for c := 0; c < e.cfg.Cores; c++ {
						if vdOf(c).Contains(l) {
							err = fmt.Errorf("slice %d: line %#x in both %v and VD bank %d", si, uint64(l), where, c)
							break
						}
					}
				}
				return err == nil
			}
		}
		tded.ED.Range(check(directory.WhereED))
		if err != nil {
			return err
		}
		tded.TD.Range(check(directory.WhereTD))
		if err != nil {
			return err
		}
		if vdOf != nil {
			for c := 0; c < e.cfg.Cores; c++ {
				for _, l := range vdOf(c).Lines() {
					if _, ok := e.l2[c].Probe(l); !ok {
						return fmt.Errorf("slice %d: VD bank %d entry %#x not in owner's L2", si, c, uint64(l))
					}
				}
			}
		}
	}
	return nil
}
