// Package config holds the architectural parameters of the simulated machine:
// the Intel Skylake-X-like baseline and the SecDir variant, following
// Tables 3 and 4 of the paper.
package config

import (
	"fmt"

	"secdir/internal/cachesim"
)

// DirectoryKind selects the directory organization of the simulated machine.
type DirectoryKind int

const (
	// Baseline is the Skylake-X-style directory: per-slice TD + 12-way ED
	// (Figure 2a, Figure 3a).
	Baseline DirectoryKind = iota
	// SecDir is the paper's design: per-slice TD + 8-way ED + per-core
	// cuckoo Victim Directory banks (Figure 2b, Figure 3b).
	SecDir
	// WayPartitioned is the §1/§11 alternative: directory ways statically
	// partitioned across cores (DAWG-style). Secure but inflexible — it
	// cannot be built at all once cores exceed the way count.
	WayPartitioned
	// RandMapped is the §11 randomization-based alternative (CEASER-style):
	// a keyed, periodically re-keyed set-index permutation. Defeats
	// targeted eviction sets but only slows flooding attacks.
	RandMapped
	// SkewedDir is a SEED-style linearly-skewed directory: one unified table
	// whose every way is indexed by its own secret invertible affine map
	// over GF(2^n).
	SkewedDir
	// DLS is a directoryless shared LLC: coherence rides on inclusive
	// shared-cache tags, removing the directory side channel but keeping the
	// classic inclusive-LLC one.
	DLS
	// TagPartitioned gives every core a private tag partition mirroring its
	// L2 (data stays shared), so cross-core conflict evictions are
	// impossible by construction (after Ramkrishnan et al.).
	TagPartitioned
	// Ceaser is the gradual-remap variant of RandMapped: two live keys and a
	// remap pointer sweeping the set space, the relocation schedule real
	// CEASER hardware ships.
	Ceaser
)

// String implements fmt.Stringer.
func (k DirectoryKind) String() string {
	switch k {
	case Baseline:
		return "baseline"
	case SecDir:
		return "secdir"
	case WayPartitioned:
		return "way-partitioned"
	case RandMapped:
		return "rand-mapped"
	case SkewedDir:
		return "skewed"
	case DLS:
		return "dls"
	case TagPartitioned:
		return "tag-partitioned"
	case Ceaser:
		return "ceaser"
	default:
		return fmt.Sprintf("DirectoryKind(%d)", int(k))
	}
}

// Latencies holds the round-trip latency constants of Table 4, in cycles of
// the 2.0 GHz core clock.
type Latencies struct {
	L1RT        int // private L1 round trip
	L2RT        int // private L2 round trip
	DirLocalRT  int // directory/LLC slice on the local tile
	DirRemoteRT int // directory/LLC slice on a remote tile
	EBCheck     int // added when the VD Empty-Bit array is consulted
	VDAccess    int // added when the EB misses and the VD banks are read
	DRAMRT      int // main memory round trip after the L3 (50 ns at 2 GHz)
	CacheToCore int // extra hops to fetch a line from a remote L2

	// MLP is the memory-level-parallelism divisor applied to L2-miss
	// latency: an out-of-order core (8-issue, 32-entry load queue, Table 4)
	// overlaps independent misses, so the average stall per miss is the
	// round-trip latency divided by the achieved overlap. A first-order
	// constant models this; 1 yields a fully blocking core.
	MLP int

	// MeshHopRT, when positive, replaces the flat local/remote split with a
	// distance-based model of Table 4's 4×2 mesh: a directory access costs
	// DirLocalRT plus MeshHopRT round-trip cycles per Manhattan hop between
	// the requesting tile and the home slice's tile. 0 keeps the two-level
	// model.
	MeshHopRT int
}

// Config fully describes one simulated machine.
type Config struct {
	// Cores is the number of cores; the machine has one LLC/directory slice
	// per core. Must be a power of two for the slice hash.
	Cores int

	// Private caches. L1 is modeled as a subset of L2 so the directory
	// tracks L2 contents only (see DESIGN.md).
	L1Sets, L1Ways int
	L2Sets, L2Ways int

	// L2Policy selects the private-cache replacement policy (LRU default;
	// SRRIP and tree-PLRU model what shipping cores implement).
	L2Policy cachesim.Policy

	// Traditional Directory: coupled to the LLC slice (TDWays == LLC ways).
	TDSets, TDWays int

	// Extended Directory.
	EDSets, EDWays int

	// Directory organization.
	Kind DirectoryKind

	// Victim Directory (SecDir only): per-core bank geometry within a slice.
	VDSets, VDWays int
	// NumRelocations bounds the cuckoo relocation chain (8 in Table 4).
	NumRelocations int
	// VDCuckoo selects the cuckoo organization (CKVD) vs. a plain one-hash
	// bank (NoCKVD) — the Table 6 comparison.
	VDCuckoo bool
	// VDEmptyBit enables the Empty-Bit arrays that skip accesses to empty
	// VD sets (§5.2.2). This only affects latency/energy accounting.
	VDEmptyBit bool

	// Protocol selects the coherence protocol family. SecDir works with any
	// protocol (§4.2); the paper's evaluation uses MOESI, the §7 analysis
	// assumes MESI.
	Protocol Protocol

	// VDSearchBatch limits how many VD banks are searched at a time
	// (§5.1: "SecDir can save hardware by performing the VD search
	// operation in batches — e.g., by accessing and searching 8 VD banks at
	// a time"). 0 searches all banks in parallel. On reads, the search is
	// called off as soon as a matching entry is found.
	VDSearchBatch int

	// VDStash adds a small fully-associative stash to each VD bank that
	// absorbs entries a failed cuckoo relocation chain would otherwise
	// evict — one of the "more sophisticated cuckoo" extensions §10.3
	// leaves to future work. 0 disables it.
	VDStash int

	// Mitigation selects the §6 defense against the VD timing side channel
	// (the VD is accessed after the ED/TD, so coherence transactions that
	// find their entry in a VD take ~7 cycles longer; an attacker timing a
	// multithreaded victim could tell where the victim's entries live).
	Mitigation TimingMitigation

	// AppendixAFix allows TD entries to be associated with empty LLC lines,
	// so an ED->TD migration does not invalidate an Exclusive private copy.
	// The paper incorporates this fix in SecDir (Appendix A); the unfixed
	// behaviour reproduces the Skylake-X prime+probe vulnerability.
	AppendixAFix bool

	// DisableEDTD disables the shared ED and TD entirely, leaving only the
	// VDs. This emulates the most powerful adversary of §9, which fully
	// controls ED and TD.
	DisableEDTD bool

	// RekeyEvery (RandMapped and Ceaser) is the number of slice operations
	// between set-index re-keys (RandMapped: a bulk re-key; Ceaser: one
	// incremental remap step); 0 never re-keys.
	RekeyEvery int

	// RemapStep (Ceaser only) is the number of sets relocated per remap
	// step; 0 picks sets/64, a full epoch every 64 steps.
	RemapStep int

	Lat Latencies

	// Seed feeds every PRNG in the machine (replacement, cuckoo picks).
	Seed int64
}

// Protocol selects the coherence protocol family.
type Protocol int

const (
	// MOESI lets a dirty line be shared: the owner downgrades M→O on a
	// remote read and keeps the only dirty copy (no memory write-back).
	MOESI Protocol = iota
	// MESI has no Owned state: a remote read of a Modified line writes the
	// dirty data back to memory and both copies become Shared.
	MESI
)

// String implements fmt.Stringer.
func (p Protocol) String() string {
	switch p {
	case MOESI:
		return "MOESI"
	case MESI:
		return "MESI"
	default:
		return fmt.Sprintf("Protocol(%d)", int(p))
	}
}

// TimingMitigation selects how the §6 VD timing side channel is closed.
type TimingMitigation int

const (
	// MitigationOff leaves the timing difference observable (the paper's
	// evaluated design; the channel needs cross-thread communication and is
	// hard to exploit, §6).
	MitigationOff TimingMitigation = iota
	// MitigationNaive slows every ED/TD-satisfied transaction by the time a
	// VD access would have added, so entry location is timing-invisible.
	MitigationNaive
	// MitigationSelective applies the slowdown only to ED/TD-satisfied
	// transactions that involve invalidating or querying another core's
	// cache — the only transactions whose latency a victim's sharing
	// partner can observe (§6's "more advanced solution").
	MitigationSelective
)

// String implements fmt.Stringer.
func (m TimingMitigation) String() string {
	switch m {
	case MitigationOff:
		return "off"
	case MitigationNaive:
		return "naive"
	case MitigationSelective:
		return "selective"
	default:
		return fmt.Sprintf("TimingMitigation(%d)", int(m))
	}
}

// DefaultLatencies returns the Table 4 latency constants.
func DefaultLatencies() Latencies {
	return Latencies{
		L1RT:        4,
		L2RT:        10,
		DirLocalRT:  30,
		DirRemoteRT: 50,
		EBCheck:     2,
		VDAccess:    5,
		DRAMRT:      100, // 50 ns at 2.0 GHz
		CacheToCore: 40,  // remote-L2 forwarding beyond the directory hop
		MLP:         4,
	}
}

// SkylakeX returns the baseline configuration of Tables 3/4 for the given
// core count: 32 KB 8-way L1D, 1 MB 16-way L2, per-slice 11-way 2048-set TD
// (coupled to the 1.375 MB 11-way LLC slice) and 12-way 2048-set ED.
//
// The baseline models the Skylake-X implementation limitation of Appendix A
// (AppendixAFix == false): every TD entry must own LLC data, so an ED→TD
// migration of an exclusively-held line invalidates the private copy. Only
// SecDir incorporates the fix ("Such a fix has been incorporated in our
// SecDir implementation", Appendix A).
func SkylakeX(cores int) Config {
	return Config{
		Cores:  cores,
		L1Sets: 64, L1Ways: 8,
		L2Sets: 1024, L2Ways: 16,
		TDSets: 2048, TDWays: 11,
		EDSets: 2048, EDWays: 12,
		Kind:         Baseline,
		AppendixAFix: false,
		Lat:          DefaultLatencies(),
		Seed:         1,
	}
}

// SecDirConfig returns the SecDir configuration of Table 4 for the given core
// count: the ED gives up 4 of its 12 ways to per-core VD banks; with 8 cores
// each bank is 4-way with 512 sets, so a core's distributed VD holds
// 8 slices × 512 × 4 = 16384 entries — as many as lines in the 1 MB L2.
func SecDirConfig(cores int) Config {
	c := SkylakeX(cores)
	c.Kind = SecDir
	c.AppendixAFix = true
	c.EDWays = 8
	c.VDWays = 4
	// Size the per-core distributed VD to the number of L2 lines:
	// cores banks machine-wide, VDSets*VDWays entries each.
	l2Lines := c.L2Sets * c.L2Ways
	c.VDSets = ceilPow2(l2Lines / (cores * c.VDWays))
	c.NumRelocations = 8
	c.VDCuckoo = true
	c.VDEmptyBit = true
	return c
}

// RandMappedConfig returns the CEASER-style randomized directory at baseline
// geometry, re-keying every rekeyEvery slice operations (0 = never).
func RandMappedConfig(cores, rekeyEvery int) Config {
	c := SkylakeX(cores)
	c.Kind = RandMapped
	c.AppendixAFix = true
	c.RekeyEvery = rekeyEvery
	return c
}

// WayPartitionedConfig returns the way-partitioned alternative design at
// baseline geometry. Construction fails (NewEngine returns an error) once
// the core count exceeds the TD or ED way count.
func WayPartitionedConfig(cores int) Config {
	c := SkylakeX(cores)
	c.Kind = WayPartitioned
	c.AppendixAFix = true
	return c
}

// SkewedConfig returns the SEED-style skewed directory at baseline geometry:
// the TD + ED way budget folded into one GF(2^n)-skewed table.
func SkewedConfig(cores int) Config {
	c := SkylakeX(cores)
	c.Kind = SkewedDir
	c.AppendixAFix = true
	return c
}

// DLSConfig returns the directoryless shared-LLC design at baseline geometry:
// the directory storage folded back into the inclusive LLC tag array.
func DLSConfig(cores int) Config {
	c := SkylakeX(cores)
	c.Kind = DLS
	c.AppendixAFix = true
	return c
}

// TagPartConfig returns the tag-partitioned / data-shared design at baseline
// geometry: the TD + ED way budget split into per-core tag partitions.
func TagPartConfig(cores int) Config {
	c := SkylakeX(cores)
	c.Kind = TagPartitioned
	c.AppendixAFix = true
	return c
}

// CeaserConfig returns the gradually-remapped randomized directory at
// baseline geometry, taking one remap step every rekeyEvery slice operations
// (0 = never).
func CeaserConfig(cores, rekeyEvery int) Config {
	c := SkylakeX(cores)
	c.Kind = Ceaser
	c.AppendixAFix = true
	c.RekeyEvery = rekeyEvery
	return c
}

// ceilPow2 returns the smallest power of two >= v (minimum 1).
func ceilPow2(v int) int {
	p := 1
	for p < v {
		p <<= 1
	}
	return p
}

// L2Lines returns the number of lines a private L2 holds.
func (c Config) L2Lines() int { return c.L2Sets * c.L2Ways }

// WithSeed returns a copy of the configuration reseeded for one independent
// trial — the seeding hook Monte-Carlo harnesses (internal/leakage) use to
// derive per-trial machines from one base configuration.
func (c Config) WithSeed(seed int64) Config {
	c.Seed = seed
	return c
}

// VDEntriesPerCore returns the number of VD entries a single core owns
// machine-wide (one bank per slice, Cores slices).
func (c Config) VDEntriesPerCore() int {
	if c.Kind != SecDir {
		return 0
	}
	return c.Cores * c.VDSets * c.VDWays
}

// Validate checks structural requirements and returns a descriptive error.
func (c Config) Validate() error {
	switch {
	case c.Cores <= 0 || c.Cores&(c.Cores-1) != 0:
		return fmt.Errorf("config: cores must be a positive power of two, got %d", c.Cores)
	case c.TDSets != c.EDSets:
		return fmt.Errorf("config: TD and ED must have the same set count (%d != %d); entries migrate within a set index", c.TDSets, c.EDSets)
	case c.Kind == SecDir && (c.VDSets <= 0 || c.VDWays <= 0):
		return fmt.Errorf("config: SecDir requires VD geometry, got %dx%d", c.VDSets, c.VDWays)
	case c.DisableEDTD && c.Kind != SecDir:
		return fmt.Errorf("config: DisableEDTD requires the SecDir directory")
	}
	for _, d := range []struct {
		name string
		v    int
	}{
		{"L1Sets", c.L1Sets}, {"L2Sets", c.L2Sets}, {"TDSets", c.TDSets}, {"EDSets", c.EDSets},
	} {
		if d.v <= 0 || d.v&(d.v-1) != 0 {
			return fmt.Errorf("config: %s must be a positive power of two, got %d", d.name, d.v)
		}
	}
	return nil
}
