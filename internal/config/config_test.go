package config

import "testing"

func TestSkylakeXDefaults(t *testing.T) {
	c := SkylakeX(8)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.Kind != Baseline || c.AppendixAFix {
		t.Fatal("baseline must model the unfixed Skylake-X (Appendix A)")
	}
	if c.L2Lines() != 16384 {
		t.Fatalf("L2Lines = %d, want 16384 (1 MB of 64 B lines)", c.L2Lines())
	}
	if c.TDWays != 11 || c.EDWays != 12 || c.TDSets != 2048 {
		t.Fatalf("directory geometry %d/%d x %d", c.TDWays, c.EDWays, c.TDSets)
	}
}

func TestSecDirDefaults(t *testing.T) {
	c := SecDirConfig(8)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.Kind != SecDir || !c.AppendixAFix || !c.VDCuckoo || !c.VDEmptyBit {
		t.Fatalf("SecDir defaults wrong: %+v", c)
	}
	if c.EDWays != 8 {
		t.Fatalf("EDWays = %d, want 8 (Table 4)", c.EDWays)
	}
	if c.VDSets != 512 || c.VDWays != 4 {
		t.Fatalf("VD bank = %dx%d, want 512x4 (Table 4)", c.VDSets, c.VDWays)
	}
	if c.NumRelocations != 8 {
		t.Fatalf("NumRelocations = %d, want 8", c.NumRelocations)
	}
	// The per-core distributed VD must hold at least as many entries as the
	// L2 holds lines (§4.1).
	if c.VDEntriesPerCore() < c.L2Lines() {
		t.Fatalf("per-core VD %d entries < %d L2 lines", c.VDEntriesPerCore(), c.L2Lines())
	}
}

func TestVDEntriesScaleWithCores(t *testing.T) {
	// Per-core VD capacity stays ≈ L2 size irrespective of core count: more
	// slices, smaller banks (§4.1 "Provides Isolation Inexpensively and
	// Scalably").
	for _, n := range []int{4, 8, 16, 32, 64} {
		c := SecDirConfig(n)
		got := c.VDEntriesPerCore()
		if got < c.L2Lines() || got > 2*c.L2Lines() {
			t.Errorf("%d cores: per-core VD %d entries (L2 %d)", n, got, c.L2Lines())
		}
	}
}

func TestValidateRejections(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Cores = 3 },
		func(c *Config) { c.Cores = 0 },
		func(c *Config) { c.EDSets = 1024 }, // TD/ED set mismatch
		func(c *Config) { c.L2Sets = 1000 },
		func(c *Config) { c.Kind = SecDir; c.VDSets = 0 },
		func(c *Config) { c.DisableEDTD = true }, // requires SecDir
	}
	for i, mutate := range bad {
		c := SkylakeX(8)
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestKindString(t *testing.T) {
	if Baseline.String() != "baseline" || SecDir.String() != "secdir" {
		t.Fatal("DirectoryKind.String broken")
	}
}

func TestDefaultLatencies(t *testing.T) {
	l := DefaultLatencies()
	// Table 4 round-trip constants.
	if l.L1RT != 4 || l.L2RT != 10 || l.DirLocalRT != 30 || l.DirRemoteRT != 50 {
		t.Fatalf("cache/directory latencies: %+v", l)
	}
	if l.EBCheck != 2 || l.VDAccess != 5 {
		t.Fatalf("VD latencies: %+v", l)
	}
	if l.DRAMRT != 100 { // 50 ns at 2.0 GHz
		t.Fatalf("DRAM latency: %+v", l)
	}
}
