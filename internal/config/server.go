package config

import (
	"fmt"
	"runtime"
	"time"
)

// ServerConfig holds the operational parameters of the secdir-serve job
// server: where it listens, how much work it queues before pushing back, how
// wide the worker pool is, and how long any single job may run.
type ServerConfig struct {
	// Addr is the listen address, host:port ("" chooses the default).
	Addr string
	// QueueDepth bounds the number of accepted-but-not-started jobs; a
	// submission past the bound is rejected with 429 (backpressure).
	QueueDepth int
	// Workers is the number of concurrent job executors; 0 uses GOMAXPROCS.
	Workers int
	// JobTimeout is the per-job wall-clock budget; a job that exceeds it is
	// cancelled via its context and reported failed. 0 means no timeout.
	JobTimeout time.Duration
}

// DefaultServerConfig returns the defaults secdir-serve starts with: a
// modest queue, one worker per CPU, and a generous per-job budget.
func DefaultServerConfig() ServerConfig {
	return ServerConfig{
		Addr:       "localhost:8372",
		QueueDepth: 64,
		Workers:    runtime.GOMAXPROCS(0),
		JobTimeout: 10 * time.Minute,
	}
}

// Validate checks the operational parameters and returns a descriptive
// error.
func (c ServerConfig) Validate() error {
	switch {
	case c.QueueDepth < 1:
		return fmt.Errorf("config: server queue depth must be >= 1, got %d", c.QueueDepth)
	case c.Workers < 0:
		return fmt.Errorf("config: server workers must be >= 0, got %d", c.Workers)
	case c.JobTimeout < 0:
		return fmt.Errorf("config: server job timeout must be >= 0, got %v", c.JobTimeout)
	}
	return nil
}

// ResolvedWorkers returns the effective worker-pool width (Workers, or
// GOMAXPROCS when unset).
func (c ServerConfig) ResolvedWorkers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}
