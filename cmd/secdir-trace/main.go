// Command secdir-trace records workload access traces to files and inspects
// them. Recorded traces replay bit-identically via
// `secdir-sim -workload file:<path>` (machine size via -cores), which pins
// down the reference stream when comparing directory designs.
//
// Usage:
//
//	secdir-trace record -workload mix2 -core 0 -n 200000 -o mix2-core0.sdtr
//	secdir-trace info -i mix2-core0.sdtr
package main

import (
	"flag"
	"fmt"
	"os"

	"secdir/internal/addr"
	"secdir/internal/metrics"
	"secdir/internal/server"
	"secdir/internal/stats"
	"secdir/internal/trace"
)

// meteredGen wraps a generator and mirrors the stream it produces into
// metrics instruments ("trace/reads", "trace/writes", "trace/gap").
type meteredGen struct {
	trace.Generator
	reads, writes *metrics.Counter
	gap           *metrics.Histogram
}

// Next produces the next access and records it.
func (g meteredGen) Next() trace.Access {
	a := g.Generator.Next()
	if a.Write {
		g.writes.Inc()
	} else {
		g.reads.Inc()
	}
	g.gap.Observe(uint64(a.Gap))
	return a
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "record":
		record(os.Args[2:])
	case "info":
		info(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: secdir-trace record|info [flags]")
	os.Exit(2)
}

func record(args []string) {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	workload := fs.String("workload", "mix0", "any secdir-sim workload spec: mixN, a PARSEC name, aes, uniform:N, stream:N")
	core := fs.Int("core", 0, "which core's stream to record")
	cores := fs.Int("cores", 8, "machine size the workload is built for")
	n := fs.Uint64("n", 100_000, "accesses to record")
	seed := fs.Int64("seed", 1, "generator seed")
	out := fs.String("o", "trace.sdtr", "output file")
	mflags := metrics.RegisterCLIFlags(fs)
	fs.Parse(args)

	if err := mflags.Start(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	reg := mflags.Registry()

	w, err := server.ParseWorkload(*workload, *cores, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *core < 0 || *core >= w.Cores() {
		fmt.Fprintf(os.Stderr, "core %d out of range (workload drives %d)\n", *core, w.Cores())
		os.Exit(2)
	}
	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	var gen trace.Generator = w.Gens[*core]
	if reg != nil {
		gen = meteredGen{
			Generator: gen,
			reads:     reg.Counter("trace/reads"),
			writes:    reg.Counter("trace/writes"),
			gap:       reg.Histogram("trace/gap"),
		}
	}
	if err := trace.WriteTrace(f, gen, *n); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("recorded %d accesses of %s core %d to %s\n", *n, w.Name, *core, *out)
	if err := mflags.Finish(reg); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func info(args []string) {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	in := fs.String("i", "trace.sdtr", "trace file")
	mflags := metrics.RegisterCLIFlags(fs)
	fs.Parse(args)

	if err := mflags.Start(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	reg := mflags.Registry()

	// Map the file: records decode in place from the page cache as this
	// loop computes the statistics, so large traces never sit fully decoded
	// in memory ahead of use.
	t, err := trace.OpenMappedTrace(*in)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer t.Close()

	var writes uint64
	var gaps stats.Moments
	footprint := map[addr.Line]bool{}
	n := t.Len()
	for i := uint64(0); i < n; i++ {
		a := t.At(i)
		if a.Write {
			writes++
		} else {
			reg.Counter("trace/reads").Inc()
		}
		gaps.Add(float64(a.Gap))
		reg.Histogram("trace/gap").Observe(uint64(a.Gap))
		footprint[a.Line] = true
	}
	reg.Counter("trace/writes").Add(writes)
	reg.Gauge("trace/footprint_lines").Set(float64(len(footprint)))
	fmt.Printf("%s: %d accesses\n", *in, n)
	fmt.Printf("  writes:    %s\n", stats.Ratio(writes, n))
	fmt.Printf("  footprint: %d distinct lines (%.1f KB)\n", len(footprint), float64(len(footprint))*64/1024)
	fmt.Printf("  gap:       mean %.2f, max %.0f non-memory instructions\n", gaps.Mean(), gaps.Max())
	if err := mflags.Finish(reg); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
