// Command secdir-store inspects and audits a durable experiment store
// directory written by secdir-serve -store-dir: the hash-chained run ledger
// and its content-addressed result artifacts.
//
// Usage:
//
//	secdir-store -dir DIR verify [golden path]...   audit the whole chain (and optionally pinned files)
//	secdir-store -dir DIR ls                        list ledger records, one line each
//	secdir-store -dir DIR show ID                   print records as JSON (ID = index or job id)
//	secdir-store -dir DIR export DIGEST             write an artifact's bytes to stdout
//	secdir-store -dir DIR export ID                 ... or resolve a job id / index to its result artifact
//	secdir-store -dir DIR pin NAME PATH             pin a golden file's digest into the ledger
//
// verify recomputes every record's hash, re-walks the prev-hash chain, and
// re-hashes every referenced artifact: any tampered, truncated, missing,
// inserted or removed record or artifact fails the audit with the offending
// record named. Each "golden path" pair additionally checks a pinned file
// (see KindGolden) against its recorded digest. Exit status 0 means the store
// is intact; 1 means it is not (or the command was misused).
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"

	"secdir/internal/store"
)

func main() {
	dir := flag.String("dir", "", "experiment store directory (as given to secdir-serve -store-dir)")
	flag.Usage = usage
	flag.Parse()
	if err := run(*dir, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "secdir-store:", err)
		os.Exit(1)
	}
}

// usage prints the command synopsis to stderr.
func usage() {
	fmt.Fprintf(os.Stderr, `usage: secdir-store -dir DIR COMMAND [ARG...]

commands:
  verify [NAME PATH]...  audit the hash chain and artifacts (plus pinned goldens)
  ls                     list ledger records
  show ID                print records as JSON (ID = record index or job id)
  export DIGEST|ID       write an artifact's bytes to stdout
  pin NAME PATH          pin a golden file's digest into the ledger

flags:
`)
	flag.PrintDefaults()
}

// run dispatches the subcommand against the store directory.
func run(dir string, args []string) error {
	if dir == "" {
		return fmt.Errorf("missing -dir (the directory given to secdir-serve -store-dir)")
	}
	if len(args) == 0 {
		return fmt.Errorf("missing command: verify, ls, show, or export")
	}
	b, err := store.OpenDisk(dir)
	if err != nil {
		return err
	}
	defer b.Close()
	switch cmd, rest := args[0], args[1:]; cmd {
	case "verify":
		return verify(b, rest)
	case "ls":
		return ls(b, rest)
	case "show":
		return show(b, rest)
	case "export":
		return export(b, rest)
	case "pin":
		return pin(b, rest)
	default:
		return fmt.Errorf("unknown command %q: want verify, ls, show, export, or pin", cmd)
	}
}

// verify audits the chain and any NAME PATH golden pairs.
func verify(b store.Backend, args []string) error {
	if len(args)%2 != 0 {
		return fmt.Errorf("verify takes NAME PATH pairs, got %d trailing argument(s)", len(args)%2)
	}
	rep, err := store.VerifyChain(b)
	if err != nil {
		return err
	}
	head := rep.HeadHash
	if len(head) > 12 {
		head = head[:12]
	}
	fmt.Printf("chain ok: %d record(s), %d artifact(s) checked, head %d (%s)\n",
		rep.Records, rep.ArtifactsChecked, rep.HeadIndex, head)
	for i := 0; i+1 < len(args); i += 2 {
		rec, err := store.VerifyGolden(b, args[i], args[i+1])
		if err != nil {
			return err
		}
		fmt.Printf("golden ok: %s matches %s (pinned at record %d)\n", args[i+1], args[i], rec.Index)
	}
	return nil
}

// ls prints every ledger record as a one-line summary.
func ls(b store.Backend, args []string) error {
	if len(args) != 0 {
		return fmt.Errorf("ls takes no arguments")
	}
	recs, err := records(b)
	if err != nil {
		return err
	}
	fmt.Printf("%4s  %-20s  %-11s %-22s %-8s %s\n", "idx", "time", "kind", "id", "state", "digest")
	for _, rec := range recs {
		fmt.Println(rec.String())
	}
	return nil
}

// show prints every record matching the index or job id, as indented JSON.
func show(b store.Backend, args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("show takes exactly one ID (a record index or job id)")
	}
	matches, err := match(b, args[0])
	if err != nil {
		return err
	}
	for _, rec := range matches {
		data, err := store.CanonicalJSON(rec)
		if err != nil {
			return err
		}
		fmt.Println(indent(data))
	}
	return nil
}

// export writes one artifact's exact bytes to stdout: by digest, or by
// resolving a record index / job id to its newest result digest.
func export(b store.Backend, args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("export takes exactly one DIGEST, record index, or job id")
	}
	dig := args[0]
	if data, err := b.GetArtifact(dig); err == nil {
		_, err = os.Stdout.Write(data)
		return err
	}
	matches, err := match(b, args[0])
	if err != nil {
		return err
	}
	dig = ""
	for _, rec := range matches { // newest digest-bearing record wins
		if rec.ResultDigest != "" {
			dig = rec.ResultDigest
		}
	}
	if dig == "" {
		return fmt.Errorf("%q has no result artifact", args[0])
	}
	data, err := b.GetArtifact(dig)
	if err != nil {
		return err
	}
	_, err = os.Stdout.Write(data)
	return err
}

// pin appends a KindGolden record for the file at PATH under NAME: its bytes
// become an artifact and its digest is sealed into the chain, so later
// `verify NAME PATH` runs prove the file unchanged since the pin.
func pin(b store.Backend, args []string) error {
	if len(args) != 2 {
		return fmt.Errorf("pin takes exactly NAME PATH")
	}
	data, err := os.ReadFile(args[1])
	if err != nil {
		return err
	}
	st, err := store.Open(b, store.Options{})
	if err != nil {
		return err
	}
	dig, err := st.PutRawArtifact(data)
	if err == nil {
		_, err = st.Append(store.RunRecord{Kind: store.KindGolden, Name: args[0], ResultDigest: dig})
	}
	if cerr := st.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	fmt.Printf("pinned %s as %s (%s)\n", args[1], args[0], dig[:12])
	return nil
}

// records decodes the full ledger, tolerating nothing: a store that fails
// here fails verify too.
func records(b store.Backend) ([]store.RunRecord, error) {
	lines, err := b.ReadLedger()
	if err != nil {
		return nil, err
	}
	recs := make([]store.RunRecord, 0, len(lines))
	for i, line := range lines {
		rec, err := store.DecodeRecord(line)
		if err != nil {
			return nil, fmt.Errorf("ledger record %d: %w (run verify for a full audit)", i, err)
		}
		recs = append(recs, rec)
	}
	return recs, nil
}

// match selects records by decimal chain index or by job id / name, in chain
// order.
func match(b store.Backend, id string) ([]store.RunRecord, error) {
	recs, err := records(b)
	if err != nil {
		return nil, err
	}
	var out []store.RunRecord
	if n, err := strconv.ParseInt(id, 10, 64); err == nil {
		for _, rec := range recs {
			if rec.Index == n {
				out = append(out, rec)
			}
		}
	} else {
		for _, rec := range recs {
			if rec.JobID == id || rec.Name == id {
				out = append(out, rec)
			}
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no record matches %q", id)
	}
	return out, nil
}

// indent pretty-prints compact JSON for the terminal.
func indent(data []byte) string {
	var buf bytes.Buffer
	if err := json.Indent(&buf, data, "", "  "); err != nil {
		return string(data)
	}
	return buf.String()
}
