// Command secdir-sim runs a single workload on a simulated machine with the
// baseline (Skylake-X-style) or SecDir directory and prints IPC, L2-miss
// breakdown, and directory transition statistics.
//
// Usage:
//
//	secdir-sim -dir secdir -workload mix2
//	secdir-sim -dir baseline -workload freqmine -measure 500000
//	secdir-sim -dir secdir -workload uniform:65536
package main

import (
	"flag"
	"fmt"
	"os"

	"secdir/internal/addr"
	"secdir/internal/coherence"
	"secdir/internal/config"
	"secdir/internal/metrics"
	"secdir/internal/server"
	"secdir/internal/sim"
	"secdir/internal/stats"
)

func main() {
	dir := flag.String("dir", "secdir", "directory design: baseline, secdir, waypart, randmap, skewed, dls, tagpart, or ceaser")
	compare := flag.Bool("compare", false, "run the workload on baseline AND secdir and print the deltas")
	workload := flag.String("workload", "mix0", "mix0..mix11, a PARSEC name, aes, uniform:<lines>, stream:<lines>, or file:<trace.sdtr>")
	cores := flag.Int("cores", 8, "number of cores (power of two)")
	warmup := flag.Uint64("warmup", 150_000, "warmup accesses per core")
	measure := flag.Uint64("measure", 150_000, "measured accesses per core")
	seed := flag.Int64("seed", 1, "simulation seed")
	unfixed := flag.Bool("unfixed", false, "model the Skylake-X Appendix-A limitation (baseline default: on)")
	shards := flag.Int("shards", 0, "run the engine with its directory slices sharded over N goroutines (0 = serial; results are bit-identical)")
	window := flag.Int("window", 0, "schedule bursts through conflict windows of up to N accesses (needs -shards > 1; results are bit-identical)")
	mflags := metrics.RegisterCLIFlags(flag.CommandLine)
	flag.Parse()

	if err := mflags.Start(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	reg := mflags.Registry()

	var cfg config.Config
	switch *dir {
	case "baseline":
		cfg = config.SkylakeX(*cores)
		if *unfixed {
			cfg.AppendixAFix = false
		}
	case "secdir":
		cfg = config.SecDirConfig(*cores)
	case "waypart":
		cfg = config.WayPartitionedConfig(*cores)
	case "randmap":
		cfg = config.RandMappedConfig(*cores, 200_000)
	case "skewed":
		cfg = config.SkewedConfig(*cores)
	case "dls":
		cfg = config.DLSConfig(*cores)
	case "tagpart":
		cfg = config.TagPartConfig(*cores)
	case "ceaser":
		cfg = config.CeaserConfig(*cores, 200_000)
	default:
		fmt.Fprintf(os.Stderr, "unknown -dir %q\n", *dir)
		os.Exit(2)
	}
	cfg.Seed = *seed

	if *compare {
		if err := runCompare(*workload, *cores, *seed, *warmup, *measure, reg); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := mflags.Finish(reg); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	w, err := server.ParseWorkload(*workload, *cores, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	// Latency distribution per service level, collected over the measured
	// phase.
	hist := map[coherence.Level]*stats.Histogram{}
	for _, lv := range []coherence.Level{coherence.LevelL1, coherence.LevelL2, coherence.LevelEDTD, coherence.LevelVD, coherence.LevelMemory} {
		hist[lv] = &stats.Histogram{}
	}
	r, err := sim.New(sim.Options{
		Config:          cfg,
		Work:            w,
		WarmupAccesses:  *warmup,
		MeasureAccesses: *measure,
		EngineShards:    *shards,
		EngineWindow:    *window,
		Metrics:         reg,
		Observer: func(core int, cycle uint64, line addr.Line, write bool, ar coherence.AccessResult) {
			hist[ar.Level].Add(uint64(ar.Latency))
		},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	res := r.Run()
	r.Close()
	if err := w.Close(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("workload %s on %s (%d cores, %d+%d accesses/core)\n",
		w.Name, cfg.Kind, cfg.Cores, *warmup, *measure)
	fmt.Printf("total IPC: %.4f   max cycles: %d\n", res.TotalIPC(), res.MaxCycles)
	e, v, m := res.L2MissBreakdown()
	fmt.Printf("L2 misses: %d  (ED+TD hits %d, VD hits %d, memory %d)\n", e+v+m, e, v, m)
	fmt.Printf("memory writebacks: %d   VD self-conflicts: %d\n", res.MemWritebacks, res.VDSelfConflicts)
	d := res.Dir
	fmt.Printf("directory transitions: ED→TD %d  TD→ED %d  TD drop(②) %d  TD→VD(③) %d  VD→TD(④) %d  VD drop(⑤) %d\n",
		d.EDToTD, d.TDToED, d.TDDrop, d.TDToVD, d.VDToTD, d.VDDrop)
	fmt.Printf("inclusion victims: %d\n", d.InclusionVictims)
	occ := r.Engine.OccupancySnapshot()
	fmt.Printf("directory occupancy: ED %.0f%%  TD %.0f%%", 100*occ.EDFill(), 100*occ.TDFill())
	if occ.VDCapacity > 0 {
		fmt.Printf("  VD %.1f%%", 100*occ.VDFill())
	}
	fmt.Println()
	fmt.Println("latency by service level (cycles, after MLP):")
	for _, lv := range []coherence.Level{coherence.LevelL1, coherence.LevelL2, coherence.LevelEDTD, coherence.LevelVD, coherence.LevelMemory} {
		h := hist[lv]
		if h.N() == 0 {
			continue
		}
		fmt.Printf("  %-7v n=%-10d mean=%6.1f p50<=%-5d p99<=%d\n", lv, h.N(), h.Mean(), h.Quantile(0.5), h.Quantile(0.99))
	}
	fmt.Printf("%-6s %10s %12s %10s %10s %10s\n", "core", "IPC", "accesses", "L1hit%", "L2hit%", "missRate%")
	for c, cr := range res.PerCore {
		acc := float64(cr.Stats.Accesses)
		if acc == 0 {
			acc = 1
		}
		fmt.Printf("%-6d %10.4f %12d %9.2f%% %9.2f%% %9.2f%%\n", c, cr.IPC(), cr.Stats.Accesses,
			100*float64(cr.Stats.L1Hits)/acc, 100*float64(cr.Stats.L2Hits)/acc,
			100*float64(cr.Stats.L2Misses())/acc)
	}
	if err := mflags.Finish(reg); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// runCompare runs the workload on the baseline and SecDir machines and
// prints a side-by-side delta summary. A non-nil registry is shared by both
// runs: counters aggregate and occupancy gauges reflect the last (SecDir)
// engine.
func runCompare(workload string, cores int, seed int64, warmup, measure uint64, reg *metrics.Registry) error {
	type outcome struct {
		ipc           float64
		edtd, vd, mem uint64
		incl          uint64
		maxCycles     uint64
	}
	var outs [2]outcome
	for i, cfg := range []config.Config{config.SkylakeX(cores), config.SecDirConfig(cores)} {
		cfg.Seed = seed
		w, err := server.ParseWorkload(workload, cores, seed)
		if err != nil {
			return err
		}
		r, err := sim.New(sim.Options{Config: cfg, Work: w, WarmupAccesses: warmup, MeasureAccesses: measure, Metrics: reg})
		if err != nil {
			return err
		}
		res := r.Run()
		if err := w.Close(); err != nil {
			return err
		}
		e, v, m := res.L2MissBreakdown()
		var incl uint64
		for _, c := range res.PerCore {
			incl += c.Stats.ConflictInvalidations
		}
		outs[i] = outcome{ipc: res.TotalIPC(), edtd: e, vd: v, mem: m, incl: incl, maxCycles: res.MaxCycles}
	}
	b, s := outs[0], outs[1]
	bTot, sTot := b.edtd+b.vd+b.mem, s.edtd+s.vd+s.mem
	fmt.Printf("workload %s, %d cores, %d+%d accesses/core\n\n", workload, cores, warmup, measure)
	fmt.Printf("%-22s %14s %14s %12s\n", "metric", "baseline", "secdir", "secdir/base")
	ratio := func(a, bb float64) string {
		if bb == 0 {
			return "n/a"
		}
		return fmt.Sprintf("%.4f", a/bb)
	}
	fmt.Printf("%-22s %14.4f %14.4f %12s\n", "total IPC", b.ipc, s.ipc, ratio(s.ipc, b.ipc))
	fmt.Printf("%-22s %14d %14d %12s\n", "L2 misses", bTot, sTot, ratio(float64(sTot), float64(bTot)))
	fmt.Printf("%-22s %14d %14d\n", "  ED+TD hits", b.edtd, s.edtd)
	fmt.Printf("%-22s %14d %14d\n", "  VD hits", b.vd, s.vd)
	fmt.Printf("%-22s %14d %14d\n", "  memory accesses", b.mem, s.mem)
	fmt.Printf("%-22s %14d %14d\n", "inclusion victims", b.incl, s.incl)
	fmt.Printf("%-22s %14d %14d %12s\n", "execution cycles", b.maxCycles, s.maxCycles, ratio(float64(s.maxCycles), float64(b.maxCycles)))
	return nil
}
