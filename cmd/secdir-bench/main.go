// Command secdir-bench runs the benchmark-regression harness: the
// internal/bench microbenchmarks plus bounded experiment workloads. It writes
// a machine-readable BENCH_<date>.json artifact, prints a text delta report
// against the last checked-in baseline, and exits non-zero when any metric
// regresses past the tolerance (any new allocation on a zero-alloc benchmark
// regresses regardless of tolerance).
//
// Usage:
//
//	secdir-bench [-dir .] [-baseline path] [-out path] [-tolerance 0.10] [-replay path]
//
// -replay skips the (slow) measurement and compares an existing report
// against the baseline — `secdir-bench -replay BENCH_X.json -baseline
// BENCH_X.json` is the self-check CI runs after refreshing a baseline.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"secdir/internal/bench"
)

func main() {
	var (
		dir       = flag.String("dir", ".", "directory holding the checked-in BENCH_*.json baselines")
		baseline  = flag.String("baseline", "", "explicit baseline report (default: newest BENCH_*.json in -dir)")
		out       = flag.String("out", "", "output path (default: <dir>/BENCH_<date>.json)")
		tolerance = flag.Float64("tolerance", 0.10, "relative time-regression tolerance (0.10 = 10%)")
		replay    = flag.String("replay", "", "compare this existing report instead of measuring")
		noWrite   = flag.Bool("no-write", false, "do not write the JSON artifact")
		short     = flag.Bool("short", false, "smoke mode: very short benchmark runs — meaningful for the allocs-per-op invariant only, not for timing comparisons")
	)
	// Register the testing flags (test.benchtime) so -short can shrink them.
	testing.Init()
	flag.Parse()
	if *short {
		if err := flag.Set("test.benchtime", "50ms"); err != nil {
			fmt.Fprintln(os.Stderr, "secdir-bench:", err)
			os.Exit(1)
		}
	}
	if err := run(*dir, *baseline, *out, *tolerance, *replay, *noWrite); err != nil {
		fmt.Fprintln(os.Stderr, "secdir-bench:", err)
		os.Exit(1)
	}
}

// run executes the harness and returns an error on failure or regression.
func run(dir, baseline, out string, tolerance float64, replay string, noWrite bool) error {
	var cur *bench.Report
	var err error
	if replay != "" {
		if cur, err = bench.Load(replay); err != nil {
			return err
		}
		fmt.Printf("replaying %s (%s, %s/%s)\n", replay, cur.GoVersion, cur.GOOS, cur.GOARCH)
	} else {
		fmt.Println("running microbenchmarks and workloads (several minutes)...")
		if cur, err = bench.Collect(); err != nil {
			return err
		}
		for _, m := range cur.Micro {
			fmt.Printf("  %-16s %10.1f ns/op %6d allocs/op %8d B/op\n", m.Name, m.NsPerOp, m.AllocsPerOp, m.BytesPerOp)
		}
		for _, w := range cur.Workloads {
			fmt.Printf("  %-24s %8.1f ns/access %8.2f Maccess/s\n", w.Name, w.NsPerAccess, w.MAccessesPerSec)
		}
		for _, s := range cur.Sharded {
			fmt.Printf("  %-24s serial %8.1f ns/access  sharded(%d,w%d) %8.1f ns/access  %5.2fx  occupancy %.2f\n",
				s.Name, s.SerialNs, s.Shards, s.Window, s.ShardedNs, s.Speedup, s.WindowOccupancy)
		}
		if !noWrite {
			path := out
			if path == "" {
				path = filepath.Join(dir, "BENCH_"+cur.Date+".json")
			}
			if err := cur.WriteFile(path); err != nil {
				return err
			}
			fmt.Println("wrote", path)
		}
	}

	// The delta report header states which baseline was chosen AND how, so a
	// CI log is unambiguous about what the run was judged against.
	chosen := "explicitly via -baseline"
	if baseline == "" {
		baseline, err = bench.FindBaseline(dir)
		if err != nil {
			fmt.Println("no baseline to compare against; done")
			return nil
		}
		chosen = fmt.Sprintf("newest BENCH_*.json in %s", dir)
	}
	base, err := bench.Load(baseline)
	if err != nil {
		return err
	}
	fmt.Printf("\ncomparison vs %s (chosen: %s; tolerance %.0f%%):\n", baseline, chosen, tolerance*100)
	deltas := bench.Compare(base, cur, tolerance)
	for _, d := range deltas {
		fmt.Println(d)
	}
	if reg := bench.Regressions(deltas); len(reg) > 0 {
		return fmt.Errorf("%d metric(s) regressed past the tolerance", len(reg))
	}
	fmt.Println("no regressions")
	return nil
}
