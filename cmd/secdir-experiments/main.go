// Command secdir-experiments regenerates the tables and figures of the
// SecDir paper (ISCA 2019). Each experiment is identified by the ID used in
// DESIGN.md / EXPERIMENTS.md:
//
//	A1  §2.3   required directory associativity analysis
//	F5  Fig 5  equal-storage VD sizing across core counts
//	F6  Fig 6  AES T0-table trace on SecDir with VD only
//	F7  Fig 7  SPEC mixes: normalized IPC and L2-miss breakdown
//	F8  Fig 8  PARSEC: normalized time and L2-miss breakdown
//	T6  Tab 6  Empty-Bit and cuckoo effectiveness
//	T7  Tab 7  per-slice storage and area
//	S1  §9     evict+reload / prime+probe attack comparison
//
// Usage:
//
//	secdir-experiments -run all
//	secdir-experiments -run F7,T6 -measure 300000
package main

import (
	"context"
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"secdir/internal/experiments"
	"secdir/internal/metrics"
)

var csvDir string

func main() {
	runList := flag.String("run", "all", "comma-separated experiment IDs (A1,F5,F6,F7,F8,T6,T7,S1,SC,ALT) or 'all'")
	warmup := flag.Uint64("warmup", 150_000, "warmup accesses per core")
	measure := flag.Uint64("measure", 150_000, "measured accesses per core")
	cores := flag.Int("cores", 8, "number of cores (power of two)")
	seed := flag.Int64("seed", 1, "simulation seed")
	parallel := flag.Bool("parallel", true, "fan simulations out across CPU cores (-parallel=false forces serial; results are identical either way)")
	flag.StringVar(&csvDir, "csv", "", "also write per-experiment CSV data files into this directory")
	mflags := metrics.RegisterCLIFlags(flag.CommandLine)
	flag.Parse()

	if csvDir != "" {
		if err := os.MkdirAll(csvDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if err := mflags.Start(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	reg := mflags.Registry()

	// The registry is goroutine-safe, so metrics no longer force serial
	// execution: parallel sweeps share one registry and aggregate into the
	// same counters.
	ctx := context.Background()
	o := experiments.RunOpts{Warmup: *warmup, Measure: *measure, Cores: *cores, Seed: *seed, Metrics: reg}
	if !*parallel {
		o.Workers = 1
	}

	all := map[string]func(context.Context, experiments.RunOpts) error{
		"A1": runA1, "F5": runF5, "F6": runF6, "F7": runF7,
		"F8": runF8, "T6": runT6, "T7": runT7, "S1": runS1,
		"SC": runSC, "ALT": runALT,
	}
	var ids []string
	if *runList == "all" {
		for id := range all {
			ids = append(ids, id)
		}
		sort.Strings(ids)
	} else {
		for _, id := range strings.Split(*runList, ",") {
			ids = append(ids, strings.ToUpper(strings.TrimSpace(id)))
		}
	}
	for _, id := range ids {
		fn, ok := all[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", id)
			os.Exit(2)
		}
		if err := fn(ctx, o); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			os.Exit(1)
		}
	}
	if err := mflags.Finish(reg); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func header(title string) {
	fmt.Printf("\n=== %s ===\n", title)
}

// writeCSV emits one experiment's data file when -csv is set.
func writeCSV(name string, head []string, rows [][]string) error {
	if csvDir == "" {
		return nil
	}
	f, err := os.Create(filepath.Join(csvDir, name+".csv"))
	if err != nil {
		return err
	}
	w := csv.NewWriter(f)
	if err := w.Write(head); err != nil {
		f.Close()
		return err
	}
	if err := w.WriteAll(rows); err != nil {
		f.Close()
		return err
	}
	w.Flush()
	if err := w.Error(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func ftoa(v float64) string { return strconv.FormatFloat(v, 'g', 6, 64) }
func itoa(v int) string     { return strconv.Itoa(v) }
func utoa(v uint64) string  { return strconv.FormatUint(v, 10) }

func runA1(context.Context, experiments.RunOpts) error {
	header("A1 — §2.3: directory associativity required to resist a conflict attack")
	fmt.Printf("%-8s %-34s %s\n", "cores", "required (W_L2*(N-1)+W_LLC)", "provided (W_TD+W_ED)")
	var rows [][]string
	for _, r := range experiments.AssociativityAnalysis() {
		fmt.Printf("%-8d %-34d %d\n", r.Cores, r.Required, r.Provided)
		rows = append(rows, []string{itoa(r.Cores), itoa(r.Required), itoa(r.Provided)})
	}
	return writeCSV("A1_associativity", []string{"cores", "required", "provided"}, rows)
}

func runF5(context.Context, experiments.RunOpts) error {
	header("F5 — Figure 5: #per-core VD entries / #L2 lines (equal storage to Skylake-X)")
	fmt.Printf("%-8s", "cores")
	for wED := 6; wED <= 10; wED++ {
		fmt.Printf("  W_ED=%-4d", wED)
	}
	fmt.Println()
	for _, r := range experiments.Fig5VDSizing() {
		fmt.Printf("%-8d", r.Cores)
		for wED := 6; wED <= 10; wED++ {
			fmt.Printf("  %-9.2f", r.Ratios[wED])
		}
		fmt.Println()
	}
	// The CSV rendering is shared with the golden test in
	// internal/experiments, which diffs it against data/F5_vd_sizing.csv.
	head, rows := experiments.CSVF5()
	return writeCSV("F5_vd_sizing", head, rows)
}

func runF6(ctx context.Context, o experiments.RunOpts) error {
	header("F6 — Figure 6: AES T0 accesses on SecDir with VD only (no ED/TD)")
	res, err := experiments.Fig6AESTrace(ctx, o)
	if err != nil {
		return err
	}
	fmt.Printf("T0 accesses: %d total, %d main-memory (cold first touches), %d L1/L2 hits, %d directory refetches\n",
		len(res.Points), res.MemAccesses, res.L1L2Hits, res.VDOrEDTD)
	fmt.Println("first access per line (cycle, line):")
	seen := map[int]bool{}
	for _, p := range res.Points {
		if p.MemAccess && !seen[p.LineIndex] {
			seen[p.LineIndex] = true
			fmt.Printf("  cycle %8d  line 0x%04x (T0[%2d])  memory access\n",
				p.Cycle, 0x3200+p.LineIndex*64, p.LineIndex)
		}
	}
	fmt.Printf("defense holds: all %d subsequent accesses hit the private caches\n", res.L1L2Hits)
	var rows [][]string
	for _, p := range res.Points {
		cls := "l1l2"
		if p.MemAccess {
			cls = "memory"
		}
		rows = append(rows, []string{utoa(p.Cycle), itoa(p.LineIndex), cls})
	}
	return writeCSV("F6_aes_trace", []string{"cycle", "t0_line", "class"}, rows)
}

func perfTable(rows []experiments.PerfRow, timeMetric bool) {
	metric := "normIPC"
	if timeMetric {
		metric = "normTime"
	}
	fmt.Printf("%-14s %8s %9s | %33s | %33s\n", "workload", metric, "normMiss",
		"baseline misses (edtd/vd/mem)", "secdir misses (edtd/vd/mem)")
	var sumIPC, sumMiss float64
	for _, r := range rows {
		m := r.NormIPC
		if timeMetric {
			m = r.NormTime
		}
		fmt.Printf("%-14s %8.4f %9.4f | %12d %8d %10d | %12d %8d %10d\n",
			r.Name, m, r.NormMisses,
			r.Baseline.EDTDHits, r.Baseline.VDHits, r.Baseline.MemAccess,
			r.SecDir.EDTDHits, r.SecDir.VDHits, r.SecDir.MemAccess)
		sumIPC += m
		sumMiss += r.NormMisses
	}
	n := float64(len(rows))
	fmt.Printf("%-14s %8.4f %9.4f\n", "average", sumIPC/n, sumMiss/n)
}

func runF7(ctx context.Context, o experiments.RunOpts) error {
	header("F7 — Figure 7: SPEC mixes (normalized IPC, L2-miss breakdown)")
	rows, err := experiments.Fig7SPECMixes(ctx, o)
	if err != nil {
		return err
	}
	perfTable(rows, false)
	return writeCSV("F7_spec", perfCSVHead, perfCSVRows(rows, false))
}

func runF8(ctx context.Context, o experiments.RunOpts) error {
	header("F8 — Figure 8: PARSEC (normalized execution time, L2-miss breakdown)")
	rows, err := experiments.Fig8PARSEC(ctx, o)
	if err != nil {
		return err
	}
	perfTable(rows, true)
	return writeCSV("F8_parsec", perfCSVHead, perfCSVRows(rows, true))
}

var perfCSVHead = []string{"workload", "norm_perf", "norm_misses",
	"base_edtd", "base_vd", "base_mem", "sec_edtd", "sec_vd", "sec_mem",
	"base_inclusion_victims", "sec_inclusion_victims"}

func perfCSVRows(rows []experiments.PerfRow, timeMetric bool) [][]string {
	var out [][]string
	for _, r := range rows {
		m := r.NormIPC
		if timeMetric {
			m = r.NormTime
		}
		out = append(out, []string{
			r.Name, ftoa(m), ftoa(r.NormMisses),
			utoa(r.Baseline.EDTDHits), utoa(r.Baseline.VDHits), utoa(r.Baseline.MemAccess),
			utoa(r.SecDir.EDTDHits), utoa(r.SecDir.VDHits), utoa(r.SecDir.MemAccess),
			utoa(r.BaselineInclusionVictims), utoa(r.SecDirInclusionVictims),
		})
	}
	return out
}

func runT6(ctx context.Context, o experiments.RunOpts) error {
	header("T6 — Table 6: Empty Bit (EBVD/NoEBVD) and cuckoo (CKVD/NoCKVD)")
	spec, err := experiments.Table6SPEC(ctx, o)
	if err != nil {
		return err
	}
	parsec, err := experiments.Table6PARSEC(ctx, o)
	if err != nil {
		return err
	}
	var csvRows [][]string
	print := func(rows []experiments.T6Row, label string) {
		fmt.Printf("%s\n%-14s %12s %12s\n", label, "workload", "EBVD/NoEBVD", "CKVD/NoCKVD")
		var sumEB, sumCK float64
		for _, r := range rows {
			fmt.Printf("%-14s %12.2f %12.2f\n", r.Name, r.EBRatio, r.CKRatio)
			sumEB += r.EBRatio
			sumCK += r.CKRatio
			csvRows = append(csvRows, []string{r.Name, ftoa(r.EBRatio), ftoa(r.CKRatio)})
		}
		n := float64(len(rows))
		fmt.Printf("%-14s %12.2f %12.2f\n", "average", sumEB/n, sumCK/n)
	}
	print(spec, "SPEC mixes:")
	print(parsec, "PARSEC applications:")
	return writeCSV("T6_vd_features", []string{"workload", "eb_ratio", "ck_ratio"}, csvRows)
}

func runT7(ctx context.Context, o experiments.RunOpts) error {
	header("T7 — Table 7: per-slice directory storage and area (CACTI-fitted model)")
	fmt.Printf("%-10s %-10s %10s %10s\n", "design", "structure", "KB", "mm^2")
	var baseKB, secKB, baseMM, secMM float64
	for _, r := range experiments.Table7StorageArea(o.Cores) {
		fmt.Printf("%-10s %-10s %10.2f %10.3f\n", r.Design, r.Structure, r.KB, r.MM2)
		if r.Structure == "Total" {
			if r.Design == "baseline" {
				baseKB, baseMM = r.KB, r.MM2
			} else {
				secKB, secMM = r.KB, r.MM2
			}
		}
	}
	fmt.Printf("SecDir adds %.1f KB (+%.1f%%) and %.3f mm^2 (+%.1f%%) per slice\n",
		secKB-baseKB, (secKB/baseKB-1)*100, secMM-baseMM, (secMM/baseMM-1)*100)
	// The CSV rendering is shared with the golden test in
	// internal/experiments, which diffs it against data/T7_storage_area.csv.
	head, rows := experiments.CSVT7(o.Cores)
	return writeCSV("T7_storage_area", head, rows)
}

func runS1(ctx context.Context, o experiments.RunOpts) error {
	header("S1 — §9: conflict-based directory attacks against both designs")
	res, err := experiments.SecurityAttack(ctx, o)
	if err != nil {
		return err
	}
	fmt.Printf("%-34s %12s %12s\n", "metric", "baseline", "secdir")
	fmt.Printf("%-34s %12.2f %12.2f\n", "evict+reload accuracy (0.5=chance)", res.BaselineAccuracy, res.SecDirAccuracy)
	fmt.Printf("%-34s %9d/%-2d %9d/%-2d\n", "conflict-step victim evictions",
		res.BaselineVictimEvictions, res.Rounds, res.SecDirVictimEvictions, res.Rounds)
	fmt.Printf("%-34s %12.2f %12.2f\n", "prime+probe signal (misses/round)", res.BaselineSignal, res.SecDirSignal)
	fmt.Printf("%-34s %12d %12d\n", "victim inclusion victims", res.BaselineInclusionVictims, res.SecDirInclusionVictims)
	rows := [][]string{
		{"evict_reload_accuracy", ftoa(res.BaselineAccuracy), ftoa(res.SecDirAccuracy)},
		{"victim_evictions", itoa(res.BaselineVictimEvictions), itoa(res.SecDirVictimEvictions)},
		{"prime_probe_signal", ftoa(res.BaselineSignal), ftoa(res.SecDirSignal)},
		{"inclusion_victims", utoa(res.BaselineInclusionVictims), utoa(res.SecDirInclusionVictims)},
	}
	return writeCSV("S1_security", []string{"metric", "baseline", "secdir"}, rows)
}

func runSC(ctx context.Context, o experiments.RunOpts) error {
	header("SC — scaling: the attack vs. core count (§2.3, §4.1)")
	rows, err := experiments.Scaling(ctx, o, 64)
	if err != nil {
		return err
	}
	fmt.Printf("%-7s %9s %10s %9s %11s | %21s | %21s\n",
		"cores", "reqAssoc", "VD/core", "L2lines", "ΔKB/slice", "baseline acc/evicted", "secdir acc/evicted")
	var csvRows [][]string
	for _, r := range rows {
		fmt.Printf("%-7d %9d %10d %9d %11.1f | %10.2f %8d | %10.2f %8d\n",
			r.Cores, r.RequiredAssoc, r.VDEntriesPerCore, r.L2Lines, r.StorageDeltaKB,
			r.BaselineAccuracy, r.BaselineVictimEvictions, r.SecDirAccuracy, r.SecDirVictimEvictions)
		csvRows = append(csvRows, []string{
			itoa(r.Cores), itoa(r.RequiredAssoc), itoa(r.VDEntriesPerCore), itoa(r.L2Lines),
			ftoa(r.StorageDeltaKB), ftoa(r.BaselineAccuracy), itoa(r.BaselineVictimEvictions),
			ftoa(r.SecDirAccuracy), itoa(r.SecDirVictimEvictions),
		})
	}
	return writeCSV("SC_scaling", []string{"cores", "required_assoc", "vd_per_core", "l2_lines",
		"storage_delta_kb", "base_accuracy", "base_evictions", "sec_accuracy", "sec_evictions"}, csvRows)
}

func runALT(ctx context.Context, o experiments.RunOpts) error {
	header("ALT — §1/§11 design space: secure-directory alternatives (mix2 + two attacks)")
	rows, err := experiments.Alternatives(ctx, o)
	if err != nil {
		return err
	}
	fmt.Printf("%-16s %10s %12s | %21s | %21s\n", "design", "IPC", "L2 misses",
		"targeted acc/evicted", "flood acc/evicted")
	var csvRows [][]string
	for _, r := range rows {
		if !r.Buildable {
			fmt.Printf("%-16s %s\n", r.Design, "UNBUILDABLE at this core count (cores > directory ways)")
			csvRows = append(csvRows, []string{r.Design, "unbuildable", "", "", "", "", ""})
			continue
		}
		fmt.Printf("%-16s %10.4f %12d | %10.2f %7d/40 | %10.2f %7d/10\n",
			r.Design, r.IPC, r.L2Misses, r.AttackAccuracy, r.VictimEvictions,
			r.FloodAccuracy, r.FloodEvictions)
		csvRows = append(csvRows, []string{r.Design, ftoa(r.IPC), utoa(r.L2Misses),
			ftoa(r.AttackAccuracy), itoa(r.VictimEvictions),
			ftoa(r.FloodAccuracy), itoa(r.FloodEvictions)})
	}
	fmt.Println("way partitioning is secure but conflict-bound and unbuildable beyond 11 cores;")
	fmt.Println("randomization stops the targeted attack but only slows the flood (§11);")
	fmt.Println("SecDir blocks both structurally at baseline-like performance.")
	return writeCSV("ALT_designs", []string{"design", "ipc", "l2_misses",
		"targeted_accuracy", "targeted_evictions", "flood_accuracy", "flood_evictions"}, csvRows)
}
