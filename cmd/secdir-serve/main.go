// Command secdir-serve runs the SecDir simulation job server: an HTTP/JSON
// service that queues experiment, attack, and trace-replay jobs, executes
// them on a worker pool with per-job timeouts, and exposes job status,
// results, streamed progress, and a metrics snapshot.
//
// Usage:
//
//	secdir-serve                              # listen on localhost:8372
//	secdir-serve -addr :9000 -workers 4 -queue 16 -job-timeout 2m
//
// Fleet mode distributes leak/leaderboard sweeps across many processes:
//
//	secdir-serve -coordinator -addr :8372 \
//	    -fleet-workers http://host1:8373,http://host2:8373   # static fleet
//	secdir-serve -addr :8373 -register http://host0:8372     # dynamic worker
//
// A coordinator accepts jobs submitted with "fleet": true, shards them
// across its workers, and merges results bit-identical to a local run. Every
// server — coordinator or not — executes shards (POST /fleet/shard).
//
// Endpoints (see README.md for a worked curl session):
//
//	POST /jobs               submit a job          (202; 429 when the queue is full)
//	GET  /jobs               list jobs
//	GET  /jobs/{id}          job status
//	GET  /jobs/{id}/result   result of a done job  (409 while pending)
//	POST /jobs/{id}/cancel   cancel a job
//	GET  /jobs/{id}/stream   NDJSON progress stream
//	GET  /healthz            liveness + load
//	GET  /metricz            merged metrics snapshot (+ fleet worker status)
//	GET  /versionz           the binary's build info
//	GET  /storez             experiment-store chain head (with -store-dir)
//	POST /fleet/shard        execute one trial-range shard (NDJSON stream)
//	POST /fleet/register     worker registration/heartbeat (coordinator only)
//	GET  /fleet/workerz      per-worker liveness and counters (coordinator only)
//
// With -store-dir the server keeps a durable, hash-chained experiment store:
// every job lifecycle lands in the run ledger, results become
// content-addressed artifacts, and a restart replays the ledger — finished
// jobs answer /jobs/{id}/result byte-identically again (even after SIGKILL),
// jobs that were still queued are re-submitted under their original IDs.
// Inspect and audit the directory with the secdir-store command.
//
// SIGINT/SIGTERM starts a graceful drain: in-flight jobs finish (up to
// -drain-timeout), queued-but-unstarted jobs are requeued (persisted for
// restart when a store is attached) and their IDs logged so the operator can
// resubmit them, new submissions get 503.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"secdir/internal/config"
	"secdir/internal/fleet"
	"secdir/internal/metrics"
	"secdir/internal/server"
	"secdir/internal/store"
)

func main() {
	def := config.DefaultServerConfig()
	addr := flag.String("addr", def.Addr, "listen address")
	queue := flag.Int("queue", def.QueueDepth, "max queued jobs before submissions get 429")
	workers := flag.Int("workers", 0, "worker-pool width (0 = GOMAXPROCS)")
	jobTimeout := flag.Duration("job-timeout", def.JobTimeout, "per-job wall-clock budget (0 = none)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "how long a graceful shutdown waits for in-flight jobs")
	storeDir := flag.String("store-dir", "", "directory of the durable experiment store (empty = no persistence)")

	coordinator := flag.Bool("coordinator", false, "act as a fleet coordinator for leak/leaderboard sweeps")
	fleetWorkers := flag.String("fleet-workers", "", "comma-separated static worker base URLs (coordinator mode)")
	register := flag.String("register", "", "coordinator base URL to register with as a worker (starts a heartbeat loop)")
	advertise := flag.String("advertise", "", "base URL to announce when registering (default derived from -addr)")
	shardTrials := flag.Int("shard-trials", 0, "trials per dispatched fleet shard (0 = default)")
	shardTimeout := flag.Duration("shard-timeout", 0, "per-attempt wall-clock budget of one fleet shard (0 = default)")
	shardRetries := flag.Int("shard-retries", 0, "max genuine-failure attempts per fleet shard (0 = default)")
	heartbeat := flag.Duration("heartbeat", 0, "fleet heartbeat interval (0 = default)")
	stealAfter := flag.Duration("steal-after", 0, "age after which an idle worker duplicates a straggler's shard (0 = default)")
	flag.Parse()

	cfg := config.ServerConfig{
		Addr:       *addr,
		QueueDepth: *queue,
		Workers:    *workers,
		JobTimeout: *jobTimeout,
	}
	opts := fleetOptions{
		coordinator: *coordinator,
		workers:     splitURLs(*fleetWorkers),
		register:    *register,
		advertise:   *advertise,
		cfg: fleet.Config{
			ShardTrials:       *shardTrials,
			ShardTimeout:      *shardTimeout,
			MaxAttempts:       *shardRetries,
			HeartbeatInterval: *heartbeat,
			StealAfter:        *stealAfter,
		},
	}
	if err := run(cfg, *drainTimeout, *storeDir, opts); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// fleetOptions carries the fleet-mode flags into run.
type fleetOptions struct {
	coordinator bool
	workers     []string
	register    string
	advertise   string
	cfg         fleet.Config
}

// splitURLs parses a comma-separated URL list, dropping blanks.
func splitURLs(s string) []string {
	var out []string
	for _, u := range strings.Split(s, ",") {
		if u = strings.TrimSpace(u); u != "" {
			out = append(out, u)
		}
	}
	return out
}

// advertiseURL derives the base URL a worker announces: -advertise verbatim,
// else "http://localhost:port" from the listen address.
func advertiseURL(advertise, addr string) string {
	if advertise != "" {
		return advertise
	}
	if strings.HasPrefix(addr, ":") {
		return "http://localhost" + addr
	}
	return "http://" + addr
}

// run brings the server (and, in fleet mode, its coordinator or registration
// loop) up and tears everything down on SIGINT/SIGTERM.
func run(cfg config.ServerConfig, drainTimeout time.Duration, storeDir string, opts fleetOptions) error {
	reg := metrics.New()
	srv, err := server.New(cfg, reg)
	if err != nil {
		return err
	}

	var st *store.Store
	if storeDir != "" {
		backend, err := store.OpenDisk(storeDir)
		if err != nil {
			return fmt.Errorf("store: %w", err)
		}
		if st, err = store.Open(backend, store.Options{}); err != nil {
			return fmt.Errorf("store: %w", err)
		}
		defer func() {
			if err := st.Close(); err != nil {
				log.Printf("store close: %v", err)
			}
		}()
		rc, err := srv.AttachStore(st)
		if err != nil {
			return err
		}
		log.Printf("experiment store %s: chain head %d; restored %d finished job(s), resubmitted %d",
			storeDir, st.Stats().HeadIndex, rc.Restored, len(rc.Resubmitted))
		for _, d := range rc.Dropped {
			log.Printf("store replay dropped %s", d)
		}
	}

	var coord *fleet.Coordinator
	if opts.coordinator || len(opts.workers) > 0 {
		fc := opts.cfg
		fc.Workers = opts.workers
		fc.Metrics = reg
		coord = fleet.New(fc)
		srv.AttachFleet(coord)
		log.Printf("fleet coordinator up (%d static workers; POST /fleet/register to join)", len(opts.workers))
	}

	httpSrv := &http.Server{Addr: cfg.Addr, Handler: srv}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	if opts.register != "" {
		self := advertiseURL(opts.advertise, cfg.Addr)
		go registerLoop(ctx, opts.register, self, cfg.ResolvedWorkers())
	}

	errc := make(chan error, 1)
	go func() {
		log.Printf("secdir-serve listening on %s (%d workers, queue %d, job timeout %v)",
			cfg.Addr, cfg.ResolvedWorkers(), cfg.QueueDepth, cfg.JobTimeout)
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	log.Printf("signal received; draining (up to %v)", drainTimeout)
	dctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	requeued, drainErr := srv.Drain(dctx)
	if len(requeued) > 0 {
		log.Printf("drain requeued %d unstarted job(s): %s — resubmit them elsewhere",
			len(requeued), strings.Join(requeued, ", "))
	}
	if err := httpSrv.Shutdown(dctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	if drainErr != nil {
		return fmt.Errorf("drain: %w", drainErr)
	}
	log.Printf("drained cleanly")
	return nil
}

// registerLoop announces this worker to the coordinator at the interval the
// coordinator asks for — the registration doubles as the heartbeat — until
// ctx is cancelled. Failures are logged and retried; the coordinator treats
// a silent worker as dead and re-enqueues its shards.
func registerLoop(ctx context.Context, coordinatorURL, self string, poolWidth int) {
	interval := 2 * time.Second
	ok := true
	for {
		iv, err := fleet.RegisterWorker(ctx, nil, coordinatorURL, self, poolWidth)
		switch {
		case err == nil:
			if !ok || iv != interval {
				log.Printf("registered with coordinator %s as %s (heartbeat %v)", coordinatorURL, self, iv)
			}
			interval, ok = iv, true
		case ctx.Err() != nil:
			return
		default:
			if ok {
				log.Printf("coordinator %s registration failed (will retry): %v", coordinatorURL, err)
			}
			ok = false
		}
		select {
		case <-ctx.Done():
			return
		case <-time.After(interval):
		}
	}
}
