// Command secdir-serve runs the SecDir simulation job server: an HTTP/JSON
// service that queues experiment, attack, and trace-replay jobs, executes
// them on a worker pool with per-job timeouts, and exposes job status,
// results, streamed progress, and a metrics snapshot.
//
// Usage:
//
//	secdir-serve                              # listen on localhost:8372
//	secdir-serve -addr :9000 -workers 4 -queue 16 -job-timeout 2m
//
// Endpoints (see README.md for a worked curl session):
//
//	POST /jobs               submit a job          (202; 429 when the queue is full)
//	GET  /jobs               list jobs
//	GET  /jobs/{id}          job status
//	GET  /jobs/{id}/result   result of a done job  (409 while pending)
//	POST /jobs/{id}/cancel   cancel a job
//	GET  /jobs/{id}/stream   NDJSON progress stream
//	GET  /healthz            liveness + load
//	GET  /metricz            merged metrics snapshot
//
// SIGINT/SIGTERM starts a graceful drain: in-flight jobs finish (up to
// -drain-timeout), new submissions get 503.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"secdir/internal/config"
	"secdir/internal/metrics"
	"secdir/internal/server"
)

func main() {
	def := config.DefaultServerConfig()
	addr := flag.String("addr", def.Addr, "listen address")
	queue := flag.Int("queue", def.QueueDepth, "max queued jobs before submissions get 429")
	workers := flag.Int("workers", 0, "worker-pool width (0 = GOMAXPROCS)")
	jobTimeout := flag.Duration("job-timeout", def.JobTimeout, "per-job wall-clock budget (0 = none)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "how long a graceful shutdown waits for in-flight jobs")
	flag.Parse()

	cfg := config.ServerConfig{
		Addr:       *addr,
		QueueDepth: *queue,
		Workers:    *workers,
		JobTimeout: *jobTimeout,
	}
	if err := run(cfg, *drainTimeout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// run brings the server up and tears it down on SIGINT/SIGTERM.
func run(cfg config.ServerConfig, drainTimeout time.Duration) error {
	srv, err := server.New(cfg, metrics.New())
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Addr: cfg.Addr, Handler: srv}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("secdir-serve listening on %s (%d workers, queue %d, job timeout %v)",
			cfg.Addr, cfg.ResolvedWorkers(), cfg.QueueDepth, cfg.JobTimeout)
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	log.Printf("signal received; draining (up to %v)", drainTimeout)
	dctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	drainErr := srv.Drain(dctx)
	if err := httpSrv.Shutdown(dctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	if drainErr != nil {
		return fmt.Errorf("drain: %w", drainErr)
	}
	log.Printf("drained cleanly")
	return nil
}
