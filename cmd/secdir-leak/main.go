// Command secdir-leak is the statistical leakage-quantification lab's CLI:
// it runs Monte-Carlo attack trials against the simulated directory designs
// and prints LEAK / NO-LEAK verdicts backed by TVLA Welch t-tests (|t| > 4.5),
// channel-capacity estimates in bits per trial, and bootstrap-bounded
// distinguisher AUCs.
//
// Usage:
//
//	secdir-leak                                        # full config x strategy sweep
//	secdir-leak -config skylake-unfixed -strategy primeprobe
//	secdir-leak -config secdir -trials 2000 -json
//	secdir-leak -leaderboard                           # race the rival defenses
//	secdir-leak -fleet http://host0:8372 -trials 5000  # run on a worker fleet
//
// With -fleet the sweep is submitted to a secdir-serve coordinator, which
// shards the trials across its workers; trial seeding is worker-count
// invariant, so the merged report is bit-identical to a local run of the
// same parameters.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sync"
	"syscall"

	"secdir/internal/fleet"
	"secdir/internal/leakage"
	"secdir/internal/metrics"
)

func main() {
	cfgSpec := flag.String("config", "all", "comma-separated configs: skylake-unfixed,skylake-fixed,secdir (or all)")
	stratSpec := flag.String("strategy", "suite", "comma-separated strategies: primeprobe,evictreload,evicttime,floodreload,monitor (suite = all but floodreload)")
	trials := flag.Int("trials", 1000, "independent seeded trials per (config,strategy) cell")
	rounds := flag.Int("rounds", 16, "attack rounds per trial (half victim-active, half idle)")
	cores := flag.Int("cores", 8, "simulated cores (power of two)")
	evLines := flag.Int("evlines", 0, "eviction-set size override (0 = strategy default)")
	workers := flag.Int("workers", 0, "trial-runner goroutines (0 = GOMAXPROCS)")
	shards := flag.Int("shards", 0, "build each trial's engine with its directory slices sharded over N goroutines (0 = serial; verdicts are bit-identical)")
	window := flag.Int("window", 0, "schedule each trial engine's batched accesses through conflict windows of up to N accesses (needs -shards > 1; verdicts are bit-identical)")
	seed := flag.Int64("seed", 1, "master seed pinning trials, schedules and bootstraps")
	confidence := flag.Float64("confidence", 0.99, "bootstrap confidence level for the AUC interval")
	resamples := flag.Int("resamples", 400, "bootstrap replicates per interval")
	jsonOut := flag.Bool("json", false, "emit the report as JSON instead of a table")
	leaderboard := flag.Bool("leaderboard", false, "race the cross-defense leaderboard (baseline, secdir and the rival designs) with performance and cost columns")
	fleetURL := flag.String("fleet", "", "secdir-serve coordinator base URL: run the sweep on its worker fleet instead of locally")
	quiet := flag.Bool("quiet", false, "suppress trial progress on stderr")
	mflags := metrics.RegisterCLIFlags(flag.CommandLine)
	flag.Parse()

	if err := mflags.Start(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	reg := mflags.Registry()

	configs, err := leakage.ParseConfigList(*cfgSpec, *cores)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	strategies, err := leakage.ParseStrategyList(*stratSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *fleetURL != "" {
		req := fleet.JobRequest{
			Kind:          "leak",
			Fleet:         true,
			Cores:         *cores,
			Trials:        *trials,
			Rounds:        *rounds,
			EvictionLines: *evLines,
			Seed:          *seed,
			Confidence:    *confidence,
			Resamples:     *resamples,
		}
		if *leaderboard {
			// The flag defaults fall through to the leaderboard's own roster,
			// exactly as the local path below does.
			req.Kind = "leaderboard"
			if *cfgSpec != "all" {
				req.Configs = configs
			}
			if *stratSpec != "suite" {
				req.Strategies = leakage.StrategyNames(strategies)
			}
		} else {
			req.Configs = configs
			req.Strategies = leakage.StrategyNames(strategies)
		}
		if err := runFleet(ctx, *fleetURL, req, *jsonOut, *quiet); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if *leaderboard {
		lbOpts := leakage.LeaderboardOptions{
			Cores:         *cores,
			Trials:        *trials,
			Rounds:        *rounds,
			EvictionLines: *evLines,
			Workers:       *workers,
			Seed:          *seed,
			EngineShards:  *shards,
			EngineWindow:  *window,
			Metrics:       reg,
		}
		// Explicit -config/-strategy selections narrow the race; the flag
		// defaults fall through to the leaderboard's own roster
		// (LeaderboardNames × primeprobe+evictreload).
		if *cfgSpec != "all" {
			lbOpts.Configs = configs
		}
		if *stratSpec != "suite" {
			lbOpts.Strategies = strategies
		}
		if !*quiet {
			var mu sync.Mutex
			lbOpts.Progress = func(stage string, done, total int) {
				mu.Lock()
				fmt.Fprintf(os.Stderr, "%-32s %d/%d trials\n", stage, done, total)
				mu.Unlock()
			}
		}
		lb, err := leakage.RunLeaderboard(ctx, lbOpts)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if *jsonOut {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(lb); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		} else {
			fmt.Print(lb.Text())
		}
		if err := mflags.Finish(reg); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	opts := leakage.ReportOptions{
		Configs:       configs,
		Strategies:    strategies,
		Cores:         *cores,
		Trials:        *trials,
		Rounds:        *rounds,
		EvictionLines: *evLines,
		Workers:       *workers,
		Seed:          *seed,
		Confidence:    *confidence,
		Resamples:     *resamples,
		EngineShards:  *shards,
		EngineWindow:  *window,
		Metrics:       reg,
	}
	if !*quiet {
		var mu sync.Mutex
		opts.Progress = func(stage string, done, total int) {
			mu.Lock()
			fmt.Fprintf(os.Stderr, "%-32s %d/%d trials\n", stage, done, total)
			mu.Unlock()
		}
	}

	rep, err := leakage.RunReport(ctx, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	} else {
		fmt.Print(rep.Text())
		if n := len(rep.Leaks()); n > 0 {
			fmt.Printf("\n%d/%d cells leak under TVLA.\n", n, len(rep.Verdicts))
		} else {
			fmt.Printf("\nno cell leaks under TVLA.\n")
		}
	}
	if err := mflags.Finish(reg); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// runFleet submits the sweep to a coordinator and prints the merged result
// exactly as the local path would: the report decodes into the same Go
// structs (float64 JSON round-trips are exact), so tables, JSON and the leak
// summary are bit-identical to a local run.
func runFleet(ctx context.Context, baseURL string, req fleet.JobRequest, jsonOut, quiet bool) error {
	cl := &fleet.Client{BaseURL: baseURL}
	var progress func(fleet.ProgressEvent)
	if !quiet {
		progress = func(e fleet.ProgressEvent) {
			if e.Stage == "" || e.Stage == "start" || e.Stage == "finish" {
				return
			}
			fmt.Fprintf(os.Stderr, "%-32s %d/%d trials\n", e.Stage, e.Done, e.Total)
		}
	}
	raw, err := cl.SubmitAndWait(ctx, req, progress)
	if err != nil {
		return err
	}

	emit := func(v any) error {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(v)
	}
	if req.Kind == "leaderboard" {
		var lb leakage.Leaderboard
		if err := json.Unmarshal(raw, &lb); err != nil {
			return fmt.Errorf("bad leaderboard result: %w", err)
		}
		if jsonOut {
			return emit(&lb)
		}
		fmt.Print(lb.Text())
		return nil
	}
	var rep leakage.Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		return fmt.Errorf("bad report result: %w", err)
	}
	if jsonOut {
		return emit(&rep)
	}
	fmt.Print(rep.Text())
	if n := len(rep.Leaks()); n > 0 {
		fmt.Printf("\n%d/%d cells leak under TVLA.\n", n, len(rep.Verdicts))
	} else {
		fmt.Printf("\nno cell leaks under TVLA.\n")
	}
	return nil
}
