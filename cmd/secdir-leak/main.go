// Command secdir-leak is the statistical leakage-quantification lab's CLI:
// it runs Monte-Carlo attack trials against the simulated directory designs
// and prints LEAK / NO-LEAK verdicts backed by TVLA Welch t-tests (|t| > 4.5),
// channel-capacity estimates in bits per trial, and bootstrap-bounded
// distinguisher AUCs.
//
// Usage:
//
//	secdir-leak                                        # full config x strategy sweep
//	secdir-leak -config skylake-unfixed -strategy primeprobe
//	secdir-leak -config secdir -trials 2000 -json
//	secdir-leak -leaderboard                           # race the rival defenses
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sync"
	"syscall"

	"secdir/internal/leakage"
	"secdir/internal/metrics"
)

func main() {
	cfgSpec := flag.String("config", "all", "comma-separated configs: skylake-unfixed,skylake-fixed,secdir (or all)")
	stratSpec := flag.String("strategy", "suite", "comma-separated strategies: primeprobe,evictreload,evicttime,floodreload,monitor (suite = all but floodreload)")
	trials := flag.Int("trials", 1000, "independent seeded trials per (config,strategy) cell")
	rounds := flag.Int("rounds", 16, "attack rounds per trial (half victim-active, half idle)")
	cores := flag.Int("cores", 8, "simulated cores (power of two)")
	evLines := flag.Int("evlines", 0, "eviction-set size override (0 = strategy default)")
	workers := flag.Int("workers", 0, "trial-runner goroutines (0 = GOMAXPROCS)")
	seed := flag.Int64("seed", 1, "master seed pinning trials, schedules and bootstraps")
	confidence := flag.Float64("confidence", 0.99, "bootstrap confidence level for the AUC interval")
	resamples := flag.Int("resamples", 400, "bootstrap replicates per interval")
	jsonOut := flag.Bool("json", false, "emit the report as JSON instead of a table")
	leaderboard := flag.Bool("leaderboard", false, "race the cross-defense leaderboard (baseline, secdir and the rival designs) with performance and cost columns")
	quiet := flag.Bool("quiet", false, "suppress trial progress on stderr")
	mflags := metrics.RegisterCLIFlags(flag.CommandLine)
	flag.Parse()

	if err := mflags.Start(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	reg := mflags.Registry()

	configs, err := leakage.ParseConfigList(*cfgSpec, *cores)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	strategies, err := leakage.ParseStrategyList(*stratSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *leaderboard {
		lbOpts := leakage.LeaderboardOptions{
			Cores:         *cores,
			Trials:        *trials,
			Rounds:        *rounds,
			EvictionLines: *evLines,
			Workers:       *workers,
			Seed:          *seed,
			Metrics:       reg,
		}
		// Explicit -config/-strategy selections narrow the race; the flag
		// defaults fall through to the leaderboard's own roster
		// (LeaderboardNames × primeprobe+evictreload).
		if *cfgSpec != "all" {
			lbOpts.Configs = configs
		}
		if *stratSpec != "suite" {
			lbOpts.Strategies = strategies
		}
		if !*quiet {
			var mu sync.Mutex
			lbOpts.Progress = func(stage string, done, total int) {
				mu.Lock()
				fmt.Fprintf(os.Stderr, "%-32s %d/%d trials\n", stage, done, total)
				mu.Unlock()
			}
		}
		lb, err := leakage.RunLeaderboard(ctx, lbOpts)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if *jsonOut {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(lb); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		} else {
			fmt.Print(lb.Text())
		}
		if err := mflags.Finish(reg); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	opts := leakage.ReportOptions{
		Configs:       configs,
		Strategies:    strategies,
		Cores:         *cores,
		Trials:        *trials,
		Rounds:        *rounds,
		EvictionLines: *evLines,
		Workers:       *workers,
		Seed:          *seed,
		Confidence:    *confidence,
		Resamples:     *resamples,
		Metrics:       reg,
	}
	if !*quiet {
		var mu sync.Mutex
		opts.Progress = func(stage string, done, total int) {
			mu.Lock()
			fmt.Fprintf(os.Stderr, "%-32s %d/%d trials\n", stage, done, total)
			mu.Unlock()
		}
	}

	rep, err := leakage.RunReport(ctx, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	} else {
		fmt.Print(rep.Text())
		if n := len(rep.Leaks()); n > 0 {
			fmt.Printf("\n%d/%d cells leak under TVLA.\n", n, len(rep.Verdicts))
		} else {
			fmt.Printf("\nno cell leaks under TVLA.\n")
		}
	}
	if err := mflags.Finish(reg); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
