// Command secdir-attack mounts the cross-core conflict-based directory
// attacks of §2.2/§9 against a victim line on the baseline (Skylake-X-style)
// and SecDir directories, printing the attacker's observables and the
// ground-truth inclusion victims.
//
// Usage:
//
//	secdir-attack                     # both designs, both attacks
//	secdir-attack -dir baseline -rounds 100
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"secdir/internal/config"
	"secdir/internal/metrics"
	"secdir/internal/server"
	"secdir/internal/trace"
)

func main() {
	dir := flag.String("dir", "both", "baseline, secdir, or both")
	rounds := flag.Int("rounds", 40, "attack rounds")
	cores := flag.Int("cores", 8, "number of cores (power of two)")
	evLines := flag.Int("evlines", 32, "eviction-set size (W_ED+W_TD=23 needed to fill a set)")
	seed := flag.Int64("seed", 1, "simulation seed")
	mflags := metrics.RegisterCLIFlags(flag.CommandLine)
	flag.Parse()

	if err := mflags.Start(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	reg := mflags.Registry()

	var cfgs []config.Config
	switch *dir {
	case "baseline":
		cfgs = []config.Config{config.SkylakeX(*cores)}
	case "secdir":
		cfgs = []config.Config{config.SecDirConfig(*cores)}
	case "both":
		cfgs = []config.Config{config.SkylakeX(*cores), config.SecDirConfig(*cores)}
	default:
		fmt.Fprintf(os.Stderr, "unknown -dir %q\n", *dir)
		os.Exit(2)
	}

	target := trace.T0Lines()[0] // a line of the AES T0 table

	for _, cfg := range cfgs {
		cfg.Seed = *seed
		fmt.Printf("=== %s directory ===\n", cfg.Kind)
		fmt.Printf("victim core 0, attackers on cores 1..%d, target line %#x (AES T0[0])\n",
			*cores-1, uint64(target))

		rep, err := server.RunAttackSuite(context.Background(), cfg, reg, *rounds, *evLines, nil, 0, 0)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("evict+reload:  accuracy %.2f (0.50 = chance), victim copy evicted in %d/%d rounds\n",
			rep.EvictReloadAccuracy, rep.VictimEvictions, rep.Rounds)
		fmt.Printf("prime+probe:   signal %.2f extra probe misses/round when the victim is active\n", rep.PrimeProbeSignal)
		fmt.Printf("evict+time:    victim runs %.1f cycles slower when its operation touches the target\n", rep.EvictTimeSignal)
		fmt.Printf("key recovery:  %d/%d key nibbles recovered after %d observed encryptions\n",
			rep.KeyNibblesRecovered, rep.KeyNibblesTotal, rep.Encryptions)
		fmt.Printf("victim inclusion victims (shared-structure conflicts): %d\n", rep.InclusionVictims)
		if cfg.Kind == config.SecDir {
			fmt.Println("-> SecDir: the victim's entries retreated into its private Victim Directory;")
			fmt.Println("   the attacker forced no evictions and the reload carries no information.")
		} else {
			fmt.Println("-> Baseline: directory conflicts evicted the victim's private copies;")
			fmt.Println("   the attacker reads the victim's access pattern.")
		}
		fmt.Println()
	}
	if err := mflags.Finish(reg); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
