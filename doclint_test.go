package secdir_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestExportedIdentifiersDocumented walks every non-test source file of the
// module and fails if an exported declaration lacks a doc comment — the
// documentation bar a public release holds itself to.
func TestExportedIdentifiersDocumented(t *testing.T) {
	var files []string
	err := filepath.WalkDir(".", func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != "." && (name == "testdata" || strings.HasPrefix(name, ".")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			files = append(files, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 20 {
		t.Fatalf("found only %d source files; walking from the wrong directory?", len(files))
	}

	fset := token.NewFileSet()
	var missing []string
	for _, path := range files {
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		// package main files document the command in the file comment;
		// their internals need not be exported-documented individually,
		// but we still check them — commands here keep the same bar.
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Name.IsExported() && d.Doc.Text() == "" {
					missing = append(missing, pos(fset, d.Pos())+" func "+d.Name.Name)
				}
			case *ast.GenDecl:
				groupDoc := d.Doc.Text() != ""
				for _, spec := range d.Specs {
					switch sp := spec.(type) {
					case *ast.TypeSpec:
						if sp.Name.IsExported() && !groupDoc && sp.Doc.Text() == "" && sp.Comment.Text() == "" {
							missing = append(missing, pos(fset, sp.Pos())+" type "+sp.Name.Name)
						}
					case *ast.ValueSpec:
						for _, n := range sp.Names {
							if n.IsExported() && !groupDoc && sp.Doc.Text() == "" && sp.Comment.Text() == "" {
								missing = append(missing, pos(fset, n.Pos())+" "+n.Name)
							}
						}
					}
				}
			}
		}
	}
	if len(missing) > 0 {
		t.Errorf("%d exported identifiers lack doc comments:\n  %s",
			len(missing), strings.Join(missing, "\n  "))
	}
}

func pos(fset *token.FileSet, p token.Pos) string {
	pp := fset.Position(p)
	return pp.Filename + ":" + itoa(pp.Line)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}
